// Host topology detection and placement primitives (DESIGN.md §13). The
// runtime is topology-blind by default; everything here is opt-in behind
// `StmOptions::pinning` / `StmOptions::numa_placement`.
//
//  - Topology::detect() parses the Linux sysfs tree (cpu online mask, core
//    and package ids, NUMA node cpulists). The sysfs root is a parameter so
//    tests can point it at synthetic fixture trees; missing or malformed
//    files degrade to a flat single-node topology sized by
//    std::thread::hardware_concurrency() — a 1-vCPU container detects as
//    one CPU on one node with no SMT, never an error.
//  - pin_plan() turns a PinPolicy into an ordered CPU list; registry slot i
//    pins to plan[i % plan.size()].
//  - alloc_onnode()/free_onnode() prefer libnuma when the binary happens to
//    be linked against it (the symbols are declared weak in topology.cpp,
//    so the build carries no dependency) and otherwise fall back to plain
//    aligned heap memory, which first-touch places on the calling thread's
//    node anyway once threads are pinned.
//  - interleave_pages() spreads a region across nodes round-robin with a
//    raw mbind(2) syscall — again no libnuma needed — and is a silent no-op
//    on single-node hosts or when the kernel refuses.
#pragma once

#include <cstddef>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proust::topo {

/// How registry slots map onto CPUs. None is the default and must stay
/// behaviour-neutral: no affinity syscalls, no plan computation on the
/// transaction path.
enum class PinPolicy {
  None,     ///< leave scheduling to the OS
  Compact,  ///< fill one node (SMT siblings adjacent) before the next
  Scatter,  ///< round-robin across nodes, distinct cores before siblings
  Explicit  ///< caller-provided CPU list, slot i -> cpus[i % n]
};

/// Where shared runtime tables live relative to NUMA nodes.
enum class NumaPlacement {
  Off,         ///< first-touch wherever construction runs (default)
  Interleave,  ///< stripe shared tables across nodes page by page
  Replicate    ///< per-node reader replicas where supported (ReadSeqTable)
};

struct CpuInfo {
  int cpu = 0;      ///< logical CPU id (sysfs numbering)
  int node = 0;     ///< NUMA node owning the CPU
  int core = 0;     ///< core id within the package
  int package = 0;  ///< physical package (socket) id
};

struct Topology {
  std::vector<CpuInfo> cpus;  ///< online CPUs, ascending by id
  unsigned node_count = 1;    ///< max node id + 1 (>= 1)
  bool smt = false;           ///< any core exposes multiple hardware threads

  /// Parse `<sysfs_root>/devices/system/{cpu,node}`. Never throws; any
  /// parse failure yields the flat fallback topology.
  static Topology detect(const std::string& sysfs_root = "/sys");

  /// Process-wide cached detection of the real host (detect("/sys") once).
  static const Topology& system();

  unsigned cpu_count() const noexcept {
    return static_cast<unsigned>(cpus.size());
  }

  /// Node owning `cpu`, or 0 if the CPU is unknown.
  int node_of(int cpu) const noexcept;

  /// Ordered CPU list for a policy (empty for None, and for Explicit with
  /// an empty list — both mean "do not pin").
  std::vector<int> pin_plan(PinPolicy policy,
                            const std::vector<int>& explicit_cpus = {}) const;
};

/// Bind the calling thread to one CPU. Returns false if the kernel refuses
/// (e.g. a cpuset that excludes `cpu`); callers treat that as advisory.
bool pin_self_to(int cpu) noexcept;

/// Logical CPU the calling thread is on right now (-1 if unavailable).
int current_cpu() noexcept;

/// NUMA node of the calling thread, cached per thread. Computed once on
/// first use and refreshed by pin_self_to(); for unpinned threads it may go
/// stale after a migration, which only costs locality, never correctness —
/// users index per-node structures, and any valid index is correct.
int cached_node() noexcept;

/// True when libnuma is linked into the process (weak symbols resolved).
bool libnuma_present() noexcept;

/// 64-byte-aligned allocation preferring `node` (the caller's node when
/// negative; libnuma when present, plain heap otherwise — first-touch then
/// decides). Pair with free_onnode() using the same byte count.
void* alloc_onnode(std::size_t bytes, int node);
void free_onnode(void* p, std::size_t bytes) noexcept;

/// Best-effort MPOL_INTERLEAVE over the page-aligned interior of
/// [p, p+bytes) across nodes [0, node_count). No-op (returns false) on
/// single-node hosts or when mbind(2) fails.
bool interleave_pages(void* p, std::size_t bytes, unsigned node_count) noexcept;

const char* to_string(PinPolicy p) noexcept;
const char* to_string(NumaPlacement p) noexcept;
/// Parse "none"/"compact"/"scatter"/"explicit" (returns false on junk).
bool parse_pin_policy(std::string_view s, PinPolicy& out) noexcept;
/// Parse "off"/"interleave"/"replicate".
bool parse_numa_placement(std::string_view s, NumaPlacement& out) noexcept;

/// A default-constructed array of T with optional page-interleaved backing:
/// the NUMA-aware replacement for `std::vector<T>`-shaped runtime tables
/// (orec arrays, LAP stripe tables). With `interleave == false` this is an
/// aligned heap array — byte-for-byte the behaviour the tables had before.
template <class T>
class NumaArray {
  static constexpr std::size_t kPage = 4096;

 public:
  NumaArray() = default;
  NumaArray(std::size_t n, bool interleave) { init(n, interleave); }
  ~NumaArray() { destroy(); }

  NumaArray(NumaArray&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        n_(std::exchange(o.n_, 0)),
        align_(std::exchange(o.align_, 0)) {}
  NumaArray& operator=(NumaArray&& o) noexcept {
    if (this != &o) {
      destroy();
      data_ = std::exchange(o.data_, nullptr);
      n_ = std::exchange(o.n_, 0);
      align_ = std::exchange(o.align_, 0);
    }
    return *this;
  }
  NumaArray(const NumaArray&) = delete;
  NumaArray& operator=(const NumaArray&) = delete;

  void init(std::size_t n, bool interleave) {
    destroy();
    n_ = n;
    if (n == 0) return;
    const unsigned nodes = Topology::system().node_count;
    const bool spread = interleave && nodes > 1;
    align_ = spread ? kPage : (alignof(T) > 64 ? alignof(T) : 64);
    data_ = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(align_)));
    if (spread) interleave_pages(data_, n * sizeof(T), nodes);
    // Construct *after* the policy is applied so even the first touch of
    // each page lands where mbind said, not on the constructing thread.
    for (std::size_t i = 0; i < n; ++i) ::new (data_ + i) T();
  }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  std::size_t size() const noexcept { return n_; }
  T* data() noexcept { return data_; }

 private:
  void destroy() noexcept {
    if (data_ != nullptr) {
      for (std::size_t i = n_; i > 0; --i) data_[i - 1].~T();
      ::operator delete(data_, std::align_val_t(align_));
      data_ = nullptr;
    }
    n_ = 0;
  }

  T* data_ = nullptr;
  std::size_t n_ = 0;
  std::size_t align_ = 0;
};

}  // namespace proust::topo
