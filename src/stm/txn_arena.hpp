// Reusable per-thread transaction storage ("transaction arena"). A Txn is a
// stack object created per `atomically` call, but all of its variable-sized
// state — read set, write set, write-set index, hook lists, transaction-local
// objects — lives here and is borrowed for the duration of the call. The
// arena is never shrunk between attempts or transactions: `reset_attempt`
// rewinds logical sizes while retaining every vector capacity, pool chunk,
// ValBuf heap buffer, flat-table slot array and bump-arena block. After a
// short warm-up, a transaction attempt on this thread performs zero heap
// allocations (see tests/stm_alloc_test.cpp).
//
// Exactly one Txn per thread may be live at a time (Txn's constructor
// asserts this), so a single thread_local arena suffices even when multiple
// Stm instances coexist.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bump_arena.hpp"
#include "common/chunk_pool.hpp"
#include "common/flat_ptr_map.hpp"
#include "common/small_func.hpp"
#include "stm/fwd.hpp"
#include "stm/orec.hpp"

namespace proust::stm {

namespace detail {

/// Small-buffer value storage for redo/undo copies. The heap buffer (taken
/// only by values over 32 bytes) is retained across pool reuse.
class ValBuf {
 public:
  void* ensure(std::size_t n) {
    if (n <= kInline) return inline_;
    if (!heap_ || heap_size_ < n) {
      heap_ = std::make_unique<unsigned char[]>(n);
      heap_size_ = n;
    }
    return heap_.get();
  }
  void* data(std::size_t n) noexcept {
    return n <= kInline ? static_cast<void*>(inline_) : heap_.get();
  }
  const void* data(std::size_t n) const noexcept {
    return n <= kInline ? static_cast<const void*>(inline_) : heap_.get();
  }

 private:
  static constexpr std::size_t kInline = 32;
  alignas(16) unsigned char inline_[kInline];
  std::unique_ptr<unsigned char[]> heap_;
  std::size_t heap_size_ = 0;
};

struct WriteEntry {
  VarBase* var = nullptr;
  LockRecord lock;
  ValBuf redo;   // buffered new value (Lazy mode)
  ValBuf undo;   // displaced value (eager modes)
  bool locked = false;
  bool has_redo = false;
  bool wrote = false;  // eager modes: undo saved and in-place value replaced
};

struct ReadEntry {
  const VarBase* var;
  Version version;
};

/// One admitted optimistic unlocked read against a per-stripe sequence word
/// (core/read_seq.hpp): the word observed stable (even) around the base
/// traversal. Revalidated at every later admission, timestamp extension and
/// at commit; a mismatch means a mutator overlapped the read.
struct SeqReadEntry {
  const std::atomic<std::uint64_t>* word;
  std::uint64_t observed;
};

/// One admitted optimistic unlocked read against a lazy wrapper's
/// CommitFence: the fence word observed quiescent around the base read.
/// Own-commit brackets are excused at commit-time validation (the fence is
/// then listed in `commit_fences`).
struct FenceReadEntry {
  const CommitFence* fence;
  std::uint64_t observed;
};

}  // namespace detail

struct TxnArena {
  /// One transaction-local object (Txn::local): bump-allocated storage plus
  /// the type-erased destructor run when the attempt ends.
  struct LocalSlot {
    const void* key;
    void* obj;
    void (*destroy)(void*);
  };

  /// One abstract-lock membership owned by the running attempt: the per-owner
  /// re-entrancy counters that used to live in the lock's shared hold map
  /// (see sync/reentrant_rw_lock.hpp). `group` identifies the LAP instance
  /// that took the hold — its finish hook releases only its own entries —
  /// and `lock` is the sync::ReentrantRwLock, kept opaque at this layer.
  /// There is exactly one record per (LAP, stripe) a transaction touches,
  /// which is what makes release walk each held stripe exactly once.
  struct LockHold {
    const void* group;
    void* lock;
    std::uint32_t readers;
    std::uint32_t writers;
  };

  /// One sequence-word pin owned by the running attempt: an eager mutator
  /// bumped `word` odd before its first base mutation of that stripe and the
  /// owning ReadSeqTable's finish hook bumps it back even once — after
  /// commit (mutations stay) or after the inverse abort hooks ran (state
  /// restored). `word == nullptr` marks a released record; reset_attempt
  /// asserts every record was released.
  struct SeqHold {
    const void* group;  // the ReadSeqTable that owns the word
    std::atomic<std::uint64_t>* word;
  };

  std::vector<detail::ReadEntry> reads;
  ChunkPool<detail::WriteEntry, 32> writes;  // chunked: stable LockRecord addresses
  FlatPtrMap write_table;                    // engaged past the linear-scan window
  std::vector<VarBase*> reader_marks;

  std::vector<SmallFunc<void()>> abort_hooks;
  std::vector<SmallFunc<void()>> commit_locked_hooks;
  std::vector<SmallFunc<void()>> commit_hooks;
  std::vector<SmallFunc<void(Outcome)>> finish_hooks;
  // Fences the commit path must hold across [wv generation .. commit-locked
  // hooks complete] (see commit_fence.hpp). Registered alongside replay
  // hooks via on_commit_locked(hook, fence).
  std::vector<CommitFence*> commit_fences;

  std::vector<LocalSlot> locals;
  BumpArena local_slab;
  std::vector<LockHold> lock_holds;

  // Optimistic read fast path (DESIGN.md §12): admitted unlocked reads and
  // the sequence words this attempt holds odd as a mutator.
  std::vector<detail::SeqReadEntry> seq_reads;
  std::vector<detail::FenceReadEntry> fence_reads;
  std::vector<SeqHold> seq_holds;

  // Durability (DESIGN.md §14): redo records staged by Txn::wal_log (and
  // the auto-serialized Var writes), published to the WAL at the commit
  // point. Abort discards them with the rest of the attempt — an aborted
  // attempt's records can never reach the log.
  std::vector<std::uint8_t> wal_buf;
  std::uint32_t wal_records = 0;

  TxnArena() {
    reads.reserve(64);
    reader_marks.reserve(16);
    lock_holds.reserve(8);
    seq_reads.reserve(16);
    fence_reads.reserve(8);
    seq_holds.reserve(8);
  }

  /// The calling thread's arena (lazily constructed, lives until thread exit).
  static TxnArena& of_thread();

  /// Rewind every container to logically empty while retaining capacity.
  /// Locals are destroyed in reverse creation order; their storage is kept.
  void reset_attempt() noexcept {
#ifndef NDEBUG
    // A finished attempt holds nothing: no orec locks, no abstract-lock
    // stripes, no visible-reader marks. Chaos builds also check this at
    // runtime (Txn::verify_teardown); these asserts catch the same leaks in
    // any debug build, chaos or not.
    for (std::size_t i = 0; i < writes.size(); ++i) {
      assert(!writes[i].locked && "orec lock leaked past attempt end");
    }
    for (const LockHold& h : lock_holds) {
      assert(h.readers == 0 && h.writers == 0 &&
             "abstract-lock stripe leaked past finish hooks");
    }
    assert(reader_marks.empty() && "visible-reader marks leaked");
    for (const SeqHold& h : seq_holds) {
      assert(h.word == nullptr && "sequence word left odd past finish hooks");
    }
#endif
    reads.clear();
    writes.reset();
    write_table.clear();
    reader_marks.clear();
    abort_hooks.clear();
    commit_locked_hooks.clear();
    commit_hooks.clear();
    finish_hooks.clear();
    commit_fences.clear();
    for (auto it = locals.rbegin(); it != locals.rend(); ++it) {
      it->destroy(it->obj);
    }
    locals.clear();
    local_slab.reset();
    // Lock holds were already released by the owning LAPs' finish hooks
    // (which run before this reset); drop the records, keep the capacity.
    lock_holds.clear();
    seq_reads.clear();
    fence_reads.clear();
    // Seq holds were already bumped even by the owning tables' finish hooks.
    seq_holds.clear();
    wal_buf.clear();
    wal_records = 0;
  }
};

}  // namespace proust::stm
