// Reusable per-thread transaction storage ("transaction arena"). A Txn is a
// stack object created per `atomically` call, but all of its variable-sized
// state — read set, write set, write-set index, hook lists, transaction-local
// objects — lives here and is borrowed for the duration of the call. The
// arena is never shrunk between attempts or transactions: `reset_attempt`
// rewinds logical sizes while retaining every vector capacity, pool chunk,
// ValBuf heap buffer, flat-table slot array and bump-arena block. After a
// short warm-up, a transaction attempt on this thread performs zero heap
// allocations (see tests/stm_alloc_test.cpp).
//
// Exactly one Txn per thread may be live at a time (Txn's constructor
// asserts this), so a single thread_local arena suffices even when multiple
// Stm instances coexist.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bump_arena.hpp"
#include "common/chunk_pool.hpp"
#include "common/flat_ptr_map.hpp"
#include "common/small_func.hpp"
#include "stm/fwd.hpp"
#include "stm/orec.hpp"

namespace proust::stm {

namespace detail {

/// Small-buffer value storage for redo/undo copies. The heap buffer (taken
/// only by values over 32 bytes) is retained across pool reuse.
class ValBuf {
 public:
  void* ensure(std::size_t n) {
    if (n <= kInline) return inline_;
    if (!heap_ || heap_size_ < n) {
      heap_ = std::make_unique<unsigned char[]>(n);
      heap_size_ = n;
    }
    return heap_.get();
  }
  void* data(std::size_t n) noexcept {
    return n <= kInline ? static_cast<void*>(inline_) : heap_.get();
  }
  const void* data(std::size_t n) const noexcept {
    return n <= kInline ? static_cast<const void*>(inline_) : heap_.get();
  }

 private:
  static constexpr std::size_t kInline = 32;
  alignas(16) unsigned char inline_[kInline];
  std::unique_ptr<unsigned char[]> heap_;
  std::size_t heap_size_ = 0;
};

struct WriteEntry {
  VarBase* var = nullptr;
  LockRecord lock;
  ValBuf redo;   // buffered new value (Lazy mode)
  ValBuf undo;   // displaced value (eager modes)
  bool locked = false;
  bool has_redo = false;
  bool wrote = false;  // eager modes: undo saved and in-place value replaced
};

struct ReadEntry {
  const VarBase* var;
  Version version;
};

}  // namespace detail

struct TxnArena {
  /// One transaction-local object (Txn::local): bump-allocated storage plus
  /// the type-erased destructor run when the attempt ends.
  struct LocalSlot {
    const void* key;
    void* obj;
    void (*destroy)(void*);
  };

  /// One abstract-lock membership owned by the running attempt: the per-owner
  /// re-entrancy counters that used to live in the lock's shared hold map
  /// (see sync/reentrant_rw_lock.hpp). `group` identifies the LAP instance
  /// that took the hold — its finish hook releases only its own entries —
  /// and `lock` is the sync::ReentrantRwLock, kept opaque at this layer.
  /// There is exactly one record per (LAP, stripe) a transaction touches,
  /// which is what makes release walk each held stripe exactly once.
  struct LockHold {
    const void* group;
    void* lock;
    std::uint32_t readers;
    std::uint32_t writers;
  };

  std::vector<detail::ReadEntry> reads;
  ChunkPool<detail::WriteEntry, 32> writes;  // chunked: stable LockRecord addresses
  FlatPtrMap write_table;                    // engaged past the linear-scan window
  std::vector<VarBase*> reader_marks;

  std::vector<SmallFunc<void()>> abort_hooks;
  std::vector<SmallFunc<void()>> commit_locked_hooks;
  std::vector<SmallFunc<void()>> commit_hooks;
  std::vector<SmallFunc<void(Outcome)>> finish_hooks;
  // Fences the commit path must hold across [wv generation .. commit-locked
  // hooks complete] (see commit_fence.hpp). Registered alongside replay
  // hooks via on_commit_locked(hook, fence).
  std::vector<CommitFence*> commit_fences;

  std::vector<LocalSlot> locals;
  BumpArena local_slab;
  std::vector<LockHold> lock_holds;

  TxnArena() {
    reads.reserve(64);
    reader_marks.reserve(16);
    lock_holds.reserve(8);
  }

  /// The calling thread's arena (lazily constructed, lives until thread exit).
  static TxnArena& of_thread();

  /// Rewind every container to logically empty while retaining capacity.
  /// Locals are destroyed in reverse creation order; their storage is kept.
  void reset_attempt() noexcept {
#ifndef NDEBUG
    // A finished attempt holds nothing: no orec locks, no abstract-lock
    // stripes, no visible-reader marks. Chaos builds also check this at
    // runtime (Txn::verify_teardown); these asserts catch the same leaks in
    // any debug build, chaos or not.
    for (std::size_t i = 0; i < writes.size(); ++i) {
      assert(!writes[i].locked && "orec lock leaked past attempt end");
    }
    for (const LockHold& h : lock_holds) {
      assert(h.readers == 0 && h.writers == 0 &&
             "abstract-lock stripe leaked past finish hooks");
    }
    assert(reader_marks.empty() && "visible-reader marks leaked");
#endif
    reads.clear();
    writes.reset();
    write_table.clear();
    reader_marks.clear();
    abort_hooks.clear();
    commit_locked_hooks.clear();
    commit_hooks.clear();
    finish_hooks.clear();
    commit_fences.clear();
    for (auto it = locals.rbegin(); it != locals.rend(); ++it) {
      it->destroy(it->obj);
    }
    locals.clear();
    local_slab.reset();
    // Lock holds were already released by the owning LAPs' finish hooks
    // (which run before this reset); drop the records, keep the capacity.
    lock_holds.clear();
  }
};

}  // namespace proust::stm
