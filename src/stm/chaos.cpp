#include "stm/chaos.hpp"

#include <cstdio>
#include <thread>

namespace proust::stm {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace

ChaosConfig ChaosConfig::standard(std::uint64_t seed) noexcept {
  ChaosConfig c;
  c.seed = seed;
  c.at(ChaosPoint::TxnRead) = {.abort = 0.002, .timeout = 0, .delay = 0.01};
  c.at(ChaosPoint::TxnValidate) = {.abort = 0.01, .timeout = 0, .delay = 0.02};
  c.at(ChaosPoint::CommitLock) = {.abort = 0.01, .timeout = 0, .delay = 0.02};
  c.at(ChaosPoint::WvPublish) = {.abort = 0.01, .timeout = 0, .delay = 0.05};
  c.at(ChaosPoint::LapAcquire) = {.abort = 0.005, .timeout = 0.01, .delay = 0.02};
  c.at(ChaosPoint::LockTransition) = {.abort = 0, .timeout = 0.02, .delay = 0.2};
  c.at(ChaosPoint::ReplayApply) = {.abort = 0, .timeout = 0, .delay = 0.05};
  // Abort/Timeout draws here coerce to a forced slow-path fallback (the
  // point sits before any admission, so there is nothing to abort).
  c.at(ChaosPoint::FastPathRead) = {.abort = 0.02, .timeout = 0, .delay = 0.02};
  return c;
}

ChaosConfig ChaosConfig::aggressive(std::uint64_t seed) noexcept {
  ChaosConfig c;
  c.seed = seed;
  c.at(ChaosPoint::TxnRead) = {.abort = 0.01, .timeout = 0, .delay = 0.03};
  c.at(ChaosPoint::TxnValidate) = {.abort = 0.05, .timeout = 0, .delay = 0.05};
  c.at(ChaosPoint::CommitLock) = {.abort = 0.05, .timeout = 0, .delay = 0.05};
  c.at(ChaosPoint::WvPublish) = {.abort = 0.05, .timeout = 0, .delay = 0.1};
  c.at(ChaosPoint::LapAcquire) = {.abort = 0.02, .timeout = 0.05, .delay = 0.05};
  c.at(ChaosPoint::LockTransition) = {.abort = 0, .timeout = 0.1, .delay = 0.3};
  c.at(ChaosPoint::ReplayApply) = {.abort = 0, .timeout = 0, .delay = 0.1};
  c.at(ChaosPoint::FastPathRead) = {.abort = 0.1, .timeout = 0, .delay = 0.05};
  c.delay_spins = 512;
  return c;
}

ChaosPolicy::Stream& ChaosPolicy::my_stream() noexcept {
  Stream& st = streams_[ThreadRegistry::slot()];
  if (!st.seeded) {
    // Decision N of slot k is a pure function of (seed, k, N): the stream
    // state starts at a mix of the two and only decide() advances it.
    st.state =
        cfg_.seed ^ (0xA24BAED4963EE407ULL *
                     (std::uint64_t{ThreadRegistry::slot()} + 1));
    st.seeded = true;
  }
  return st;
}

ChaosAction ChaosPolicy::decide(ChaosPoint p) noexcept {
  const ChaosPointConfig& pc = cfg_.at(p);
  if (!pc.enabled()) return ChaosAction::None;
  Stream& st = my_stream();
  const double u =
      static_cast<double>(splitmix_next(st.state) >> 11) * 0x1.0p-53;
  ChaosAction a = ChaosAction::None;
  if (u < pc.abort) {
    a = ChaosAction::Abort;
  } else if (u < pc.abort + pc.timeout) {
    a = ChaosAction::Timeout;
  } else if (u < pc.abort + pc.timeout + pc.delay) {
    a = ChaosAction::Delay;
  } else if (u < pc.abort + pc.timeout + pc.delay + pc.crash) {
    a = ChaosAction::Crash;
  }
  if (a != ChaosAction::None) {
    st.injected[static_cast<std::size_t>(p)] += 1;
  }
  return a;
}

void ChaosPolicy::inject_delay() noexcept {
  for (unsigned i = 0; i < cfg_.delay_spins; ++i) cpu_relax();
  if (cfg_.delay_yield) std::this_thread::yield();
}

bool ChaosPolicy::on_lock_transition(sync::LockTransition t) noexcept {
  const ChaosAction a = decide(ChaosPoint::LockTransition);
  if (a == ChaosAction::None) return false;
  if (t == sync::LockTransition::kSlowPath &&
      (a == ChaosAction::Timeout || a == ChaosAction::Abort)) {
    return true;  // force the acquisition to fail as if it timed out
  }
  // Everything else (and timeout draws at CAS/park, which cannot be honored
  // there) becomes a delay, so every counted decision has an effect.
  inject_delay();
  return false;
}

std::array<std::uint64_t, kNumChaosPoints> ChaosPolicy::injected_totals()
    const noexcept {
  std::array<std::uint64_t, kNumChaosPoints> out{};
  for (const Stream& st : streams_) {
    for (std::size_t i = 0; i < kNumChaosPoints; ++i) out[i] += st.injected[i];
  }
  return out;
}

std::uint64_t ChaosPolicy::injected_total() const noexcept {
  std::uint64_t t = 0;
  for (auto n : injected_totals()) t += n;
  return t;
}

void ChaosPolicy::report_leak(const char* what) noexcept {
  leaks_.fetch_add(1, std::memory_order_acq_rel);
  std::fprintf(stderr, "[chaos] TEARDOWN LEAK (seed=%llu): %s\n",
               static_cast<unsigned long long>(cfg_.seed), what);
}

}  // namespace proust::stm
