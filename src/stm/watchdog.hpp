// Progress watchdog: an optional sentinel thread that watches one Stm for a
// commit epoch that stops advancing while transactions are still active —
// the observable signature of livelock, a wedged irrevocable fallback, or a
// user transaction stuck inside its body. Detection is entirely passive
// (periodic stats snapshots plus reads of the contention-management slot
// table); nothing on the transaction hot path knows the watchdog exists.
//
// On a stall the watchdog assembles a StallReport — per-slot diagnostics
// (attempt counts, held abstract-lock stripes, call age), the fallback-gate
// holder if any, and the chaos seed when fault injection is active so the
// hang is replayable — and delivers it to StmOptions::on_stall (stderr when
// unset). It then escalates by crowning the *oldest* active transaction as
// the contention manager's elder (CmState::force_elder): committers defer
// to it and lock waiters shed, the same starvation-recovery protocol the
// priority policies use, applied by force before the stop-the-world gate
// would ever be needed.
//
// The same reporting channel covers the irrevocable-fallback budget
// (StmOptions::fallback_budget): a gate hold that overruns its budget is
// reported while still in flight, which is what makes a wedged fallback
// transaction diagnosable rather than silent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "stm/fwd.hpp"

namespace proust::stm {

/// What the watchdog saw when it decided to speak up. Delivered on the
/// watchdog thread; handlers must not run transactions on the watched Stm.
struct StallReport {
  enum class Kind : std::uint8_t {
    StalledEpoch,       // commits stopped advancing while work is active
    GateBudgetOverrun,  // an irrevocable fallback exceeded fallback_budget
  };

  struct SlotInfo {
    unsigned slot = 0;
    std::uint32_t attempts = 0;  // attempts of the slot's current call
    std::uint32_t stripes = 0;   // abstract-lock stripes currently held
    std::uint64_t birth = 0;     // call age stamp (smaller = older)
    std::uint64_t priority = 0;  // published priority (lower = stronger)
  };

  Kind kind = Kind::StalledEpoch;
  std::uint64_t stalled_ns = 0;  // stall duration / gate hold so far
  std::uint64_t commits = 0;     // committed attempts at detection time
  std::uint64_t starts = 0;      // begun attempts at detection time
  std::uint64_t chaos_seed = 0;  // replay seed; 0 = no chaos policy active
  unsigned gate_holder = ~0u;    // slot holding the fallback gate, or ~0u
  unsigned boosted_slot = ~0u;   // slot escalated to elder, or ~0u
  std::vector<SlotInfo> active;  // active slots (tracking CM only)

  std::string to_string() const;
};

class Stm;

/// The sentinel thread. Construction starts it; destruction (or stop())
/// joins it. One watchdog per Stm; keep it alive only while worker threads
/// run (it holds a reference to the Stm).
class Watchdog {
 public:
  struct Config {
    /// Snapshot cadence.
    std::chrono::nanoseconds poll = std::chrono::milliseconds(2);
    /// How long the commit count may sit still (with work active) before a
    /// StalledEpoch report fires.
    std::chrono::nanoseconds stall_after = std::chrono::milliseconds(50);
    /// Crown the oldest active transaction as elder on a stall.
    bool escalate = true;
  };

  explicit Watchdog(Stm& stm);
  Watchdog(Stm& stm, Config cfg);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  ~Watchdog();

  /// Idempotent; joins the sentinel thread.
  void stop();

  std::uint64_t stalls() const noexcept {
    return stalls_.load(std::memory_order_acquire);
  }
  std::uint64_t escalations() const noexcept {
    return escalations_.load(std::memory_order_acquire);
  }
  std::uint64_t budget_overruns() const noexcept {
    return budget_overruns_.load(std::memory_order_acquire);
  }

 private:
  void run();
  void deliver(const StallReport& report);

  Stm& stm_;
  Config cfg_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> budget_overruns_{0};
  std::thread thread_;
};

}  // namespace proust::stm
