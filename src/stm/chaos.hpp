// Deterministic runtime fault injection ("chaos") for the STM and the
// Proust wrapper layers. The correctness story of the design space rests on
// its *failure* paths — inverse-log rollback, replay-log dropping,
// abstract-lock release on timeout-abort, the irrevocable fallback — and
// those paths only break under adversarial contention. A ChaosPolicy
// manufactures that adversity on demand: each injection point (ChaosPoint in
// fwd.hpp) can inject a spurious abort, a bounded delay/yield, or a forced
// lock timeout, with every decision drawn from a per-thread-slot splitmix64
// stream.
//
// Determinism contract: decision N drawn from slot k's stream is a pure
// function of (config.seed, k, N). A failing run is reproduced by re-running
// with the same seed and thread structure — scheduling still interleaves the
// threads differently, but each thread meets the same decision sequence, so
// the same fault pattern is applied. Single-threaded runs replay bit-exactly
// (tests/chaos_test.cpp pins this).
//
// Disabled-mode cost is zero: the policy hangs off StmOptions::chaos as a
// non-owning pointer, every gate is `if (chaos_ != nullptr) [[unlikely]]`,
// and a null policy leaves the hot paths untouched (the zero-allocation pins
// in tests/stm_alloc_test.cpp and the BENCH_STM.json numbers are unaffected).
//
// The policy also collects what the harness shakes out: per-point injection
// counters (slot-private cells, aggregated on demand) and teardown-leak
// reports — when chaos is active, Txn verifies after every commit/abort/
// timeout path that all orecs, abstract-lock stripes and reader marks were
// released, and files a report here instead of crashing, so the suite can
// assert `leaks() == 0` and still print the reproducing seed on failure.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "stm/fwd.hpp"
#include "stm/thread_registry.hpp"
#include "sync/chaos_hook.hpp"

namespace proust::stm {

/// What an injection point decided to do this time.
enum class ChaosAction : std::uint8_t {
  None,     // pass through, no perturbation
  Abort,    // spurious abort (AbortReason::ChaosInjected)
  Timeout,  // forced lock timeout (lock-acquisition points only)
  Delay,    // bounded busy-spin + optional yield
  Crash,    // kill the process (_exit) — WAL gates only (stm/wal.cpp)
};

constexpr const char* to_string(ChaosAction a) noexcept {
  switch (a) {
    case ChaosAction::None: return "none";
    case ChaosAction::Abort: return "abort";
    case ChaosAction::Timeout: return "timeout";
    case ChaosAction::Delay: return "delay";
    case ChaosAction::Crash: return "crash";
  }
  return "?";
}

/// Per-injection-point probabilities. Points differ in which actions they
/// can honor: ReplayApply and the sync-layer kJoinCas/kPark transitions are
/// delay-only (they sit inside noexcept or lock-internal code and coerce
/// other draws to Delay); forced timeouts fire at LapAcquire and at the RW
/// lock's slow-path entry; everything else supports Abort and Delay.
struct ChaosPointConfig {
  double abort = 0;    // probability of a spurious abort
  double timeout = 0;  // probability of a forced lock timeout
  double delay = 0;    // probability of a bounded delay/yield
  double crash = 0;    // probability of a process kill (WAL gates only)

  bool enabled() const noexcept {
    return abort > 0 || timeout > 0 || delay > 0 || crash > 0;
  }
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::array<ChaosPointConfig, kNumChaosPoints> points{};
  /// Injected-delay shape: busy spins, then (optionally) one yield.
  unsigned delay_spins = 256;
  bool delay_yield = true;

  ChaosPointConfig& at(ChaosPoint p) noexcept {
    return points[static_cast<std::size_t>(p)];
  }
  const ChaosPointConfig& at(ChaosPoint p) const noexcept {
    return points[static_cast<std::size_t>(p)];
  }

  /// Moderate faults at every injection point — the chaos suite's default.
  static ChaosConfig standard(std::uint64_t seed) noexcept;
  /// Heavier abort/timeout pressure for targeted stress runs.
  static ChaosConfig aggressive(std::uint64_t seed) noexcept;
};

class ChaosPolicy final : public sync::ChaosLockHook {
 public:
  explicit ChaosPolicy(const ChaosConfig& cfg) noexcept : cfg_(cfg) {}
  ChaosPolicy(const ChaosPolicy&) = delete;
  ChaosPolicy& operator=(const ChaosPolicy&) = delete;
  ~ChaosPolicy() { remove_lock_hook(); }

  const ChaosConfig& config() const noexcept { return cfg_; }
  std::uint64_t seed() const noexcept { return cfg_.seed; }

  /// Draw the calling thread's next decision for `p` and count it. Points
  /// with all-zero probabilities draw nothing (their streams stay aligned
  /// with a config where they are enabled elsewhere).
  ChaosAction decide(ChaosPoint p) noexcept;

  /// Execute one injected delay (bounded spin + optional yield). Decisions
  /// are deterministic; the delay's wall-clock effect of course is not.
  void inject_delay() noexcept;

  /// Install/remove this policy as the process-wide sync-layer hook so the
  /// reentrant RW lock's CAS/park/slow-path transitions inject too. Only
  /// one policy can be installed at a time; install before spawning worker
  /// threads and remove (or destroy the policy) after joining them.
  void install_lock_hook() noexcept {
    hook_installed_ = true;
    sync::set_chaos_lock_hook(this);
  }
  void remove_lock_hook() noexcept {
    if (hook_installed_) {
      sync::set_chaos_lock_hook(nullptr);
      hook_installed_ = false;
    }
  }

  bool on_lock_transition(sync::LockTransition t) noexcept override;

  /// Injection totals per point across all threads (exact when quiesced).
  std::array<std::uint64_t, kNumChaosPoints> injected_totals() const noexcept;
  std::uint64_t injected_total() const noexcept;

  /// Teardown-leak reporting (see Txn::verify_teardown): a finished attempt
  /// that still holds an orec, an abstract-lock stripe or a reader mark
  /// files a report here. The chaos suites assert `leaks() == 0`.
  void report_leak(const char* what) noexcept;
  std::uint64_t leaks() const noexcept {
    return leaks_.load(std::memory_order_acquire);
  }

 private:
  /// One slot's decision stream plus its injection counters; padded so
  /// concurrent threads never share a line.
  struct alignas(kCacheLine) Stream {
    std::uint64_t state = 0;
    bool seeded = false;
    std::array<std::uint64_t, kNumChaosPoints> injected{};
  };

  Stream& my_stream() noexcept;
  static std::uint64_t splitmix_next(std::uint64_t& s) noexcept {
    s += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  ChaosConfig cfg_;
  std::atomic<std::uint64_t> leaks_{0};
  bool hook_installed_ = false;
  std::array<Stream, ThreadRegistry::kMaxSlots> streams_{};
};

}  // namespace proust::stm
