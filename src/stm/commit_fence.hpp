// Commit-visibility fence: closes the window between a transaction's
// *logical* commit and its effects landing in a shared base structure.
//
// A committing transaction draws its write version (advancing the global
// clock) and only then runs its commit-locked hooks — the replay of a lazy
// wrapper's operation log onto the shared base. To the STM that commit has
// already happened: a transaction starting in the window reads an `rv`
// covering the committer's `wv`, so the committer's stripes validate clean
// once released. But a snapshot shadow copy taken in the same window reads
// the base *before* the replay lands, so the new transaction judges its
// operations (returned old-values, size deltas) against state that is
// missing a commit serialized before it. The per-key read-after checks
// cannot catch this — the snapshot reads every key at once, only the keys
// the transaction touches are validated, and those validate successfully
// precisely because `wv <= rv`. The chaos harness found this (DESIGN.md
// §9): injected delays between wv generation and replay stretched the
// window from nanoseconds to microseconds and the lazy-snapshot
// differential suites diverged from their reference within a few hundred
// transactions.
//
// The fence is seqlock-like, generalized to concurrent writers. Committers
// are bracketed by the STM itself across [wv generation .. commit-locked
// hooks complete] (Txn::commit enters every fence registered via
// on_commit_locked(hook, fence)); replay application additionally brackets
// itself for direct (non-transactional) use. Snapshotters accept a copy
// only if the fence word — [entry count | active count] packed in one
// atomic — is quiescent before the copy and unchanged after it: any
// bracket that overlaps, or even fully runs inside, the copy forces a
// retry. Writers never wait, so a snapshotter (which holds no STM locks
// while in the transaction body) spins only while some committer makes
// progress: no cycles. Under a commit storm the snapshotter retries like
// any seqlock reader; the copy itself is O(1), so the window is tiny.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/backoff.hpp"

namespace proust::stm {

class CommitFence {
 public:
  // Low 20 bits: writers in flight. High 44 bits: total entries.
  static constexpr std::uint64_t kActiveMask = (1ull << 20) - 1;
  static constexpr std::uint64_t kEntry = (1ull << 20) | 1ull;

  /// Raw fence word for optimistic read validation (DESIGN.md §12): a
  /// fast-path reader records the word it observed quiescent and re-checks
  /// it at admission/commit; any committed bracket since then has moved it.
  std::uint64_t word() const noexcept {
    return word_.load(std::memory_order_seq_cst);
  }

  /// True when no writer bracket is in flight in `w`.
  static constexpr bool quiescent(std::uint64_t w) noexcept {
    return (w & kActiveMask) == 0;
  }

  /// Writer bracket. Entries nest (the STM's commit bracket encloses the
  /// replay log's own); the fence is quiescent when every enter has exited.
  void enter() noexcept { word_.fetch_add(kEntry, std::memory_order_seq_cst); }
  void exit() noexcept { word_.fetch_sub(1, std::memory_order_release); }

  class Guard {
   public:
    explicit Guard(CommitFence& f) noexcept : f_(f) { f_.enter(); }
    ~Guard() { f_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    CommitFence& f_;
  };

  /// Take a snapshot via `take` at a cut no writer bracket overlaps:
  /// quiescent before the copy and no entry since. Retries otherwise.
  template <class Take>
  auto consistent(const Take& take) {
    for (;;) {
      const std::uint64_t before = word_.load(std::memory_order_seq_cst);
      if ((before & kActiveMask) != 0) {
        Backoff::cpu_relax();
        continue;
      }
      auto snap = take();
      if (word_.load(std::memory_order_seq_cst) == before) return snap;
    }
  }

 private:
  std::atomic<std::uint64_t> word_{0};
};

}  // namespace proust::stm
