#include "stm/txn.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <shared_mutex>
#include <stdexcept>
#include <thread>

#include "common/backoff.hpp"
#include "common/ebr.hpp"
#include "stm/chaos.hpp"
#include "stm/commit_fence.hpp"
#include "stm/contention.hpp"
#include "stm/mvcc.hpp"
#include "stm/stm.hpp"
#include "stm/wal.hpp"

namespace proust::stm {

namespace {
thread_local Txn* tls_current = nullptr;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Txn* Txn::current() noexcept { return tls_current; }

TxnArena& TxnArena::of_thread() {
  static thread_local TxnArena arena;
  return arena;
}

Txn::Txn(Stm& stm)
    : stm_(stm),
      arena_(TxnArena::of_thread()),
      chaos_(stm.options().chaos),
      mode_(stm.mode()),
      scheme_(stm.options().clock_scheme),
      slot_(ThreadRegistry::slot()),
      stats_(stm.stats().counters(slot_)),
      mvcc_state_(stm.mvcc_state()) {
  assert(tls_current == nullptr && "a transaction is already running here");
  assert(arena_.writes.empty() && arena_.locals.empty() &&
         "arena not reset by the previous transaction");
  assert(ebr::debug_guard_depth() == 0 &&
         "EBR guard leaked into a transaction");
  if (stm.cm().tracking()) {
    cm_ = &stm.cm();
    cm_cell_ = &stm.cm_state().slot(slot_);
  }
  optimistic_reads_ = stm.options().optimistic_reads;
  wal_ = stm.options().durability;
  tls_current = this;
}

Txn::~Txn() {
  assert(!active_ && "transaction destroyed while active");
  cm_end_call();
  tls_current = nullptr;
}

void Txn::begin() {
  assert(!active_);
  if (mode_ == Mode::EagerAll && slot_ >= ThreadRegistry::kMaxVisibleSlots) {
    throw std::runtime_error(
        "Mode::EagerAll supports at most 64 concurrent threads "
        "(visible-reader bitmap width)");
  }
  rv_ = stm_.clock_now();
  ++attempt_;
  active_ = true;
  snapshot_frozen_ = false;
  wal_epoch_ = 0;
  if (mvcc_state_ != nullptr &&
      (mvcc_declared_ || (mvcc_try_snapshot_ && !mvcc_ineligible_)))
      [[unlikely]] {
    // Snapshot-reader attempt: announce before pinning rv (so truncating
    // writers keep every version this snapshot can need — mvcc.hpp), and
    // stay EBR-pinned for the whole attempt so truncated chain suffixes we
    // may still traverse are not reclaimed under us.
    rv_ = mvcc_state_->reader_begin(slot_, stm_.clock_);
    mvcc_reader_ = true;
    snapshot_reads_ = 0;
  }
  stats_.count_start();
  if (cm_cell_ != nullptr) [[unlikely]] cm_begin_attempt();
}

void Txn::cm_begin_attempt() {
  CmState& st = stm_.cm_state();
  if (cm_token_ == 0) {
    // First attempt of this call: mint the call-unique birth stamp and
    // activate the cell. Any doom left over from the slot's previous call
    // is stale by construction (tokens are unique) but cleared anyway so
    // the fast-path doom poll stays a compare-against-zero.
    cm_token_ = st.next_birth();
    cm_cell_->doom.store(0, std::memory_order_relaxed);
    cm_cell_->birth.store(cm_token_, std::memory_order_relaxed);
    cm_cell_->token.store(cm_token_, std::memory_order_release);
  }
  const unsigned elder_after = stm_.options().cm_elder_after;
  if (elder_after != 0 && eligible_attempts_ >= elder_after) {
    st.publish_elder(slot_);
  }
  // The published elder (and the irrevocable fallback attempt) runs at the
  // strongest priority: everyone else's arbitration yields to it, which is
  // what makes its recovery window converge.
  const bool boosted = gate_exempt_ || st.elder() == slot_ + 1;
  cm_pri_ = boosted ? 0 : cm_->priority(cm_token_, karma_);
  cm_cell_->priority.store(cm_pri_, std::memory_order_release);
  cm_cell_->attempts.store(attempt_, std::memory_order_relaxed);
  cm_cell_->stripes.store(0, std::memory_order_relaxed);
}

void Txn::cm_end_call() noexcept {
  if (cm_cell_ == nullptr) return;
  stm_.cm_state().clear_elder(slot_);
  cm_cell_->token.store(0, std::memory_order_release);
  cm_cell_->priority.store(kCmIdlePriority, std::memory_order_relaxed);
  cm_cell_->doom.store(0, std::memory_order_relaxed);
  cm_cell_->attempts.store(0, std::memory_order_relaxed);
  cm_cell_->stripes.store(0, std::memory_order_relaxed);
}

void Txn::cm_note_stripes(std::uint32_t n) noexcept {
  if (cm_cell_ != nullptr) {
    cm_cell_->stripes.store(n, std::memory_order_relaxed);
  }
}

void Txn::cm_check_doom() {
  // The irrevocable fallback never yields: its priority is 0 so nobody
  // should doom it, and a stale request must not unwind an attempt the
  // gate guarantees will succeed.
  if (gate_exempt_) return;
  const std::uint64_t d = cm_cell_->doom.load(std::memory_order_acquire);
  if (d == 0) [[likely]] return;
  cm_cell_->doom.store(0, std::memory_order_relaxed);
  if (d == cm_token_) throw ConflictAbort{AbortReason::CmKilled};
  // A mismatched token targeted a previous call of this slot; drop it.
}

bool Txn::cm_lock_conflict(const Orec& orec) {
  if (cm_cell_ == nullptr) return false;
  cm_check_doom();  // the opponent may have asked *us* to die first
  const std::uintptr_t w = orec.load();
  if (!Orec::is_locked(w)) return true;  // drained while we got here
  const std::uint32_t opp = Orec::owner_of(w)->owner_slot;
  if (opp == slot_ || opp >= ThreadRegistry::kMaxSlots) return false;
  CmState& st = stm_.cm_state();
  CmSlot& opp_cell = st.slot(opp);
  const std::uint64_t opp_pri =
      opp_cell.priority.load(std::memory_order_acquire);
  const CmDecision decision = cm_->arbitrate(cm_pri_, opp_pri);
  if (decision == CmDecision::kAbortSelf) return false;
  if (decision == CmDecision::kAbortOther) {
    const std::uint64_t opp_token =
        opp_cell.token.load(std::memory_order_acquire);
    // Doom only while the orec is still held by the record we sampled —
    // this narrows (not closes) the window in which the opponent's call
    // ends and the slot starts a new one; tokens are call-unique, so the
    // worst residual outcome is a stale doom the new call discards.
    if (opp_token != 0 && orec.load() == w) {
      opp_cell.doom.store(opp_token, std::memory_order_release);
    }
  }
  // Bounded wait for the lock to drain — the doomed opponent polls at its
  // next read/write/commit gate and releases on abort; a kWait opponent
  // (tie) finishes on its own or we give up. Never unbounded: cm_wait_rounds
  // caps the wait, and a doom aimed at us mid-wait aborts us immediately.
  const unsigned rounds = stm_.options().cm_wait_rounds;
  const std::uint64_t t0 = now_ns();
  for (unsigned r = 0; r < rounds; ++r) {
    for (int i = 0; i < 16; ++i) Backoff::cpu_relax();
    if ((r & 15u) == 15u) std::this_thread::yield();
    if (!Orec::is_locked(orec.load())) {
      stats_.count_cm_wait_ns(now_ns() - t0);
      return true;
    }
    const std::uint64_t d = cm_cell_->doom.load(std::memory_order_acquire);
    if (d == cm_token_ && !gate_exempt_) {
      cm_cell_->doom.store(0, std::memory_order_relaxed);
      stats_.count_cm_wait_ns(now_ns() - t0);
      throw ConflictAbort{AbortReason::CmKilled};
    }
  }
  stats_.count_cm_wait_ns(now_ns() - t0);
  return false;
}

void Txn::cm_commit_entry() {
  cm_check_doom();
  if (gate_exempt_) return;
  CmState& st = stm_.cm_state();
  const unsigned elder = st.elder();
  if (elder == 0 || elder == slot_ + 1) return;
  const std::uint64_t elder_pri =
      st.slot(elder - 1).priority.load(std::memory_order_acquire);
  if (cm_pri_ <= elder_pri) return;  // we are at least as starved
  // A starving elder is published: defer this commit briefly (sleeping, so
  // on a saturated machine the elder actually gets the cycles) instead of
  // racing it for orecs and the clock. Bounded by cm_elder_yield — a wedged
  // elder can slow commits, never stop them — and aborted early if the
  // elder dooms us (we may hold encounter-time locks it needs).
  const auto deadline =
      std::chrono::steady_clock::now() + stm_.options().cm_elder_yield;
  const std::uint64_t t0 = now_ns();
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    if (st.elder() != elder) break;  // the elder finished; window over
    const std::uint64_t d = cm_cell_->doom.load(std::memory_order_acquire);
    if (d != 0) {
      cm_cell_->doom.store(0, std::memory_order_relaxed);
      if (d == cm_token_) {
        stats_.count_cm_wait_ns(now_ns() - t0);
        throw ConflictAbort{AbortReason::CmKilled};
      }
    }
  }
  stats_.count_cm_wait_ns(now_ns() - t0);
}

std::uint64_t Txn::fresh_stamp() noexcept { return stm_.next_stamp(slot_); }

void Txn::note_version_ahead(Version ver) noexcept {
  if (scheme_ == ClockScheme::LazyBump) stm_.clock_catch_up(ver);
}

detail::WriteEntry* Txn::find_write(const VarBase* var) noexcept {
  if ((write_bloom_ & bloom_bit(var)) == 0) return nullptr;
  if (write_table_on_) {
    return static_cast<detail::WriteEntry*>(arena_.write_table.find(var));
  }
  const std::size_t n = arena_.writes.size();
  for (std::size_t i = 0; i < n; ++i) {
    detail::WriteEntry& e = arena_.writes[i];
    if (e.var == var) return &e;
  }
  return nullptr;
}

detail::WriteEntry& Txn::new_write(VarBase* var) {
  detail::WriteEntry& e = arena_.writes.acquire();
  // Pool slots are recycled, not destroyed: re-initialize every field the
  // protocols read (the ValBufs keep their capacity on purpose).
  e.var = var;
  e.lock.owner = this;
  e.lock.owner_slot = slot_;
  e.lock.old_version = 0;
  e.locked = false;
  e.has_redo = false;
  e.wrote = false;
  write_bloom_ |= bloom_bit(var);
  if (write_table_on_) {
    arena_.write_table.insert(var, &e);
  } else if (arena_.writes.size() > kSmallWriteSet) {
    // Outgrew the linear-scan window: index everything seen so far.
    for (std::size_t i = 0; i < arena_.writes.size(); ++i) {
      arena_.write_table.insert(arena_.writes[i].var, &arena_.writes[i]);
    }
    write_table_on_ = true;
  }
  return e;
}

void Txn::mark_reader(VarBase& var) {
  const std::uint64_t mask = std::uint64_t{1} << slot_;
  const std::uint64_t old =
      var.readers_.fetch_or(mask, std::memory_order_acq_rel);
  if ((old & mask) == 0) arena_.reader_marks.push_back(&var);
}

void Txn::clear_reader_marks() noexcept {
  const std::uint64_t mask = ~(std::uint64_t{1} << slot_);
  for (VarBase* var : arena_.reader_marks) {
    var->readers_.fetch_and(mask, std::memory_order_acq_rel);
  }
  arena_.reader_marks.clear();
}

void Txn::read_impl(const VarBase& var, void* dst, std::size_t size) {
  assert(active_);
  assert(size == var.size_);
  stats_.count_read();
  if (mvcc_reader_) [[unlikely]] {
    // Snapshot mode: no read set, no validation, no conflict aborts. The
    // chaos gate stays (injected aborts must exercise the reader unwind
    // too); the doom poll does not — snapshot readers hold nothing a writer
    // could be waiting on, so they are exempt from contention management.
    chaos_point(ChaosPoint::TxnRead);
    mvcc_read(var, dst, size);
    return;
  }
  chaos_point(ChaosPoint::TxnRead);
  cm_poll();

  if (detail::WriteEntry* e = find_write(&var)) {
    if (mode_ == Mode::Lazy) {
      if (e->has_redo) {
        std::memcpy(dst, e->redo.data(size), size);
        return;
      }
    } else {
      // Eager modes: the in-place value is this transaction's own write.
      std::memcpy(dst, var.data_, size);
      return;
    }
  }

  if (mode_ == Mode::EagerAll) mark_reader(const_cast<VarBase&>(var));

  int cm_retries = 4;
  for (int spin = 0; spin < 4; ++spin) {
    const std::uintptr_t w = var.orec_.load();
    if (Orec::is_locked(w)) {
      if (Orec::owner_of(w)->owner == this) {
        std::memcpy(dst, var.data_, size);
        return;
      }
      // Foreign lock: let the contention manager arbitrate before aborting.
      // A drained lock re-runs the read from scratch (bounded restarts —
      // a livelocking orec must eventually abort us, not spin us).
      if (cm_retries-- > 0 && cm_lock_conflict(var.orec_)) {
        spin = -1;
        continue;
      }
      throw ConflictAbort{AbortReason::ReadLocked};
    }
    std::memcpy(dst, var.data_, size);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (var.orec_.load() != w) continue;  // torn by a concurrent committer

    const Version ver = Orec::version_of(w);
    if (ver > rv_) {
      note_version_ahead(ver);
      if (mode_ == Mode::Lazy) throw ConflictAbort{AbortReason::ReadVersion};
      // Timestamp extension (TinySTM-style). In EagerAll the read set is
      // empty (visible readers make validation unnecessary), so this always
      // succeeds and merely slides the snapshot forward.
      extend_or_abort();
      // The copied value is stale evidence: the var may have been
      // recommitted between the copy and the extension, and a compare
      // against the pre-extension `ver` cannot tell (an equal version is
      // not proof of an unchanged value while a committer races us).
      // Restart so word, value and version are re-captured under the new
      // snapshot.
      continue;
    }
    if (mode_ != Mode::EagerAll) arena_.reads.push_back({&var, ver});
    return;
  }
  throw ConflictAbort{AbortReason::ReadVersion};
}

void Txn::read_validate_impl(const VarBase& var) {
  assert(active_);
  stats_.count_read();
  // Validation reads are conflict-abstraction brackets over *current* base
  // state — incompatible with reading a historical snapshot. A snapshot
  // attempt demotes (or retries) as a writer, and the call stops being
  // auto-detected as read-only.
  if (mvcc_reader_) [[unlikely]] mvcc_promote();
  if (mvcc_state_ != nullptr) [[unlikely]] mvcc_ineligible_ = true;
  chaos_point(ChaosPoint::TxnRead);
  cm_poll();

  if (mode_ == Mode::EagerAll) {
    // Visible readers: publish the bit; a conflicting committer would have
    // had to abort, so no version bookkeeping is needed for reads of the
    // *base*. With a frozen snapshot (lazy wrappers), additionally require
    // the location to be unchanged since the pinned read version: the
    // shadow copy, unlike an in-place read, does not track current state.
    mark_reader(const_cast<VarBase&>(var));
    for (int tries = 0;; ++tries) {
      const std::uintptr_t w = var.orec_.load();
      if (Orec::is_locked(w)) {
        const LockRecord* rec = Orec::owner_of(w);
        if (rec->owner != this) {
          if (tries < 4 && cm_lock_conflict(var.orec_)) continue;
          throw ConflictAbort{AbortReason::ReadLocked};
        }
        if (snapshot_frozen_ && rec->old_version > rv_) {
          note_version_ahead(rec->old_version);
          throw ConflictAbort{AbortReason::ReadVersion};
        }
      } else if (snapshot_frozen_ && Orec::version_of(w) > rv_) {
        note_version_ahead(Orec::version_of(w));
        throw ConflictAbort{AbortReason::ReadVersion};
      }
      return;
    }
  }

  int cm_retries = 4;
  for (int spin = 0; spin < 4; ++spin) {
    const std::uintptr_t w = var.orec_.load();
    Version ver;
    if (Orec::is_locked(w)) {
      const LockRecord* rec = Orec::owner_of(w);
      if (rec->owner != this) {
        if (cm_retries-- > 0 && cm_lock_conflict(var.orec_)) {
          spin = -1;
          continue;
        }
        throw ConflictAbort{AbortReason::ReadLocked};
      }
      ver = rec->old_version;  // committed version displaced by our own lock
    } else {
      ver = Orec::version_of(w);
    }
    if (ver > rv_) {
      note_version_ahead(ver);
      if (mode_ == Mode::Lazy) throw ConflictAbort{AbortReason::ReadVersion};
      extend_or_abort();
      // Re-load the orec before recording the entry: the var may have been
      // recommitted during the extension, and the read set must hold the
      // post-extension state, not the version that triggered it.
      continue;
    }
    arena_.reads.push_back({&var, ver});
    return;
  }
  throw ConflictAbort{AbortReason::ReadVersion};
}

void Txn::write_impl(VarBase& var, const void* src, std::size_t size) {
  assert(active_);
  assert(size == var.size_);
  stats_.count_write();
  if (mvcc_reader_) [[unlikely]] mvcc_promote();
  if (mvcc_state_ != nullptr) [[unlikely]] mvcc_ineligible_ = true;
  cm_poll();

  if (detail::WriteEntry* e = find_write(&var)) {
    if (mode_ == Mode::Lazy) {
      std::memcpy(e->redo.ensure(size), src, size);
      e->has_redo = true;
    } else {
      std::memcpy(var.data_, src, size);  // lock already held by us
    }
    return;
  }

  detail::WriteEntry& e = new_write(&var);
  if (mode_ == Mode::Lazy) {
    std::memcpy(e.redo.ensure(size), src, size);
    e.has_redo = true;
    return;
  }

  // Eager modes: encounter-time lock acquisition. The base policy is
  // requester-aborts (abort-on-busy keeps the protocol deadlock-free); a
  // priority contention manager may instead doom a weaker owner or sit out
  // a bounded wait before the abort (cm_lock_conflict).
  chaos_point(ChaosPoint::CommitLock);
  int cm_retries = 4;
  while (!var.orec_.try_lock(&e.lock)) {
    if (cm_retries-- <= 0 || !cm_lock_conflict(var.orec_)) {
      throw ConflictAbort{AbortReason::WriteLocked};
    }
  }
  e.locked = true;
  if (mode_ == Mode::EagerAll) {
    const std::uint64_t mask = std::uint64_t{1} << slot_;
    if ((var.readers_.load(std::memory_order_acquire) & ~mask) != 0) {
      // Foreign visible readers: eager read-write conflict, yield to them.
      throw ConflictAbort{AbortReason::VisibleReader};
    }
  }
  std::memcpy(e.undo.ensure(size), var.data_, size);
  e.wrote = true;
  std::memcpy(var.data_, src, size);
}

void Txn::mvcc_read(const VarBase& var, void* dst, std::size_t size) {
  ++snapshot_reads_;
  for (;;) {
    const std::uintptr_t w = var.orec_.load();
    if (Orec::is_locked(w)) [[unlikely]] {
      // A writer is mid-commit. Its wv will exceed our rv (wv is generated
      // from a clock that already covered rv when the locks were taken), so
      // the value this snapshot needs is the one being displaced — and the
      // writer pushes it onto the chain before overwriting. Wait out the
      // bounded commit window rather than read a possibly-mid-overwrite
      // value; writers never wait on us, so this cannot deadlock.
      Backoff::cpu_relax();
      continue;
    }
    const Version ver = Orec::version_of(w);
    if (ver <= rv_) {
      // Current committed value is within the snapshot: seqlock copy.
      std::memcpy(dst, var.data_, size);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (var.orec_.load() == w) return;
      continue;  // torn by a concurrent committer
    }
    // In-place value postdates the snapshot. The acquire load of the orec
    // that produced `ver` ordered us after that committer's chain push, so
    // the chain holds every displaced version down to the truncation
    // horizon, which our announcement bounds at <= rv (mvcc.hpp). Walk
    // newest-first to the first entry inside the snapshot. Concurrent
    // pushes prepend strictly newer versions (skipped) and truncation only
    // unlinks entries older than the horizon (EBR keeps them alive for us).
    for (const VersionNode* v = var.chain_.load(std::memory_order_acquire);
         v != nullptr; v = v->next.load(std::memory_order_acquire)) {
      if (v->version <= rv_) {
        assert(v->size == size);
        std::memcpy(dst, v->bytes(), size);
        return;
      }
    }
    // Unreachable by the horizon argument; tolerate an exotic interleaving
    // by re-sampling the orec rather than failing.
    assert(false && "mvcc chain missing a snapshot-visible version");
  }
}

void Txn::mvcc_promote() {
  if (mvcc_declared_) {
    throw std::logic_error(
        "transaction declared read-only (Stm::atomically_ro) attempted a "
        "write, validated read, or commit-locked hook");
  }
  // Misdetected read-only call: stop trying snapshot mode for this call.
  mvcc_ineligible_ = true;
  mvcc_try_snapshot_ = false;
  if (snapshot_reads_ == 0) {
    // Nothing was observed through the snapshot yet, so nothing constrains
    // this attempt to it: demote in place and continue as an ordinary
    // writer. rv_ came from the same clock an ordinary begin() reads.
    mvcc_state_->reader_end(slot_);
    mvcc_reader_ = false;
    return;
  }
  throw ConflictAbort{AbortReason::MvccPromote};
}

void Txn::mvcc_publish_chains() {
  // The EBR pin brackets push + truncation: retire() requires it, and the
  // pin is what publishes our unlinks to the epochs that eventually reclaim
  // (common/ebr.hpp). Horizon after wv generation: a reader our scan misses
  // pinned an rv at least as new as the clock value bounding the horizon.
  ebr::EbrDomain& ebr = mvcc_state_->ebr();
  ebr.enter(slot_);
  const Version h = mvcc_state_->horizon(stm_.clock_);
  std::uint64_t pushed = 0, retired = 0, chain_max = 0;
  const std::size_t nwrites = arena_.writes.size();
  for (std::size_t i = 0; i < nwrites; ++i) {
    detail::WriteEntry& e = arena_.writes[i];
    if (!e.locked) continue;
    VarBase& var = *e.var;
    // The displaced committed value: still in place for lazy commits
    // (write-back has not run), in the undo buffer for eager ones.
    const void* displaced;
    if (mode_ == Mode::Lazy) {
      if (!e.has_redo) continue;
      displaced = var.data_;
    } else {
      if (!e.wrote) continue;
      displaced = e.undo.data(var.size_);
    }
    VersionNode* n = mvcc_state_->pool().acquire(slot_, var.size_);
    n->version = e.lock.old_version;
    n->size = var.size_;
    std::memcpy(n->bytes(), displaced, var.size_);
    n->next.store(var.chain_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    var.chain_.store(n, std::memory_order_release);
    ++pushed;
    // Truncate: keep everything down to (and including) the newest entry
    // with version <= h — a snapshot at or after the horizon can never need
    // an older one. Readers still traversing the dropped suffix hold an EBR
    // pin; retire defers the actual reclaim past their grace period.
    VersionNode* boundary = n;
    std::uint64_t len = 1;
    while (boundary->version > h) {
      VersionNode* next = boundary->next.load(std::memory_order_relaxed);
      if (next == nullptr) break;
      boundary = next;
      ++len;
    }
    VersionNode* drop =
        boundary->next.load(std::memory_order_relaxed);
    if (drop != nullptr) {
      boundary->next.store(nullptr, std::memory_order_release);
      retired += mvcc_state_->retire_chain(slot_, drop);
    }
    if (len > chain_max) chain_max = len;
  }
  ebr.exit(slot_);
  if (pushed != 0) stats_.count_mvcc_push(pushed, chain_max);
  if (retired != 0) stats_.count_mvcc_reclaim(retired);
}

bool Txn::validate_read_set() const noexcept {
  for (const auto& r : arena_.reads) {
    const std::uintptr_t w = r.var->orec_.load();
    if (Orec::is_locked(w)) {
      const LockRecord* rec = Orec::owner_of(w);
      if (rec->owner != this || rec->old_version != r.version) return false;
    } else if (Orec::version_of(w) != r.version) {
      return false;
    }
  }
  return true;
}

void Txn::extend_or_abort() {
  chaos_point(ChaosPoint::TxnValidate);
  if (snapshot_frozen_) {
    // A pinned shadow copy forbids sliding the snapshot forward.
    throw ConflictAbort{AbortReason::ReadVersion};
  }
  // Callers that saw a too-new version have already caught the clock up to
  // it (note_version_ahead), so under every scheme `now` covers the version
  // that triggered the extension.
  const Version now = stm_.clock_now();
  if (!validate_read_set()) {
    throw ConflictAbort{AbortReason::ValidationFailed};
  }
  // Admitted unlocked reads move with the snapshot: they are valid at the
  // new rv only if their words never moved (sequence words are not
  // versioned, so "unchanged since admission" is the only claim we can
  // extend).
  if (!unlocked_reads_valid(/*fences_entered=*/false)) [[unlikely]] {
    throw ConflictAbort{AbortReason::ValidationFailed};
  }
  rv_ = now;
  stats_.count_extension();
}

bool Txn::holds_seq_word(
    const std::atomic<std::uint64_t>* word) const noexcept {
  for (const TxnArena::SeqHold& h : arena_.seq_holds) {
    if (h.word == word) return true;
  }
  return false;
}

bool Txn::owns_fence(const CommitFence* fence) const noexcept {
  for (const CommitFence* f : arena_.commit_fences) {
    if (f == fence) return true;
  }
  return false;
}

// unlocked_reads_valid / fast_read_cut / admit_unlocked_read /
// admit_unlocked_fence_read are defined inline at the bottom of stm.hpp:
// they run once per fast-path read, and an out-of-line call per lookup
// (plus the spills it forces) costs more than the admission logic itself.

bool Txn::chaos_fastpath_fallback_slow() {
  const ChaosAction a = chaos_->decide(ChaosPoint::FastPathRead);
  if (a == ChaosAction::None) [[likely]] return false;
  stats_.count_injected(ChaosPoint::FastPathRead);
  if (a == ChaosAction::Delay) {
    chaos_->inject_delay();
    return false;
  }
  // Abort/Timeout draws force the locked slow path: the fast path's failure
  // mode *is* the fallback, and the slow path must produce the same result.
  return true;
}

void Txn::release_locks(Version version) noexcept {
  const std::size_t n = arena_.writes.size();
  for (std::size_t i = 0; i < n; ++i) {
    detail::WriteEntry& e = arena_.writes[i];
    if (e.locked) {
      e.var->orec_.unlock(version);
      e.locked = false;
    }
  }
}

void Txn::undo_writes() noexcept {
  for (std::size_t i = arena_.writes.size(); i-- > 0;) {
    detail::WriteEntry& e = arena_.writes[i];
    if (e.wrote) {
      std::memcpy(e.var->data_, e.undo.data(e.var->size_), e.var->size_);
      e.wrote = false;
    }
  }
}

void Txn::commit() {
  assert(active_);
  // Fast-path reads pin a container's EBR domain only for the base
  // traversal itself; a pin that survives to commit would stall every
  // domain the thread touches (common/ebr.hpp debug_guard_depth).
  assert(ebr::debug_guard_depth() == 0 &&
         "EBR guard held across a transaction boundary");

  // Snapshot readers commit unconditionally: no locks were taken, no
  // validation is owed (every read came from the pinned snapshot), and
  // neither the contention manager nor the fallback gate applies — a
  // snapshot reader holds nothing any writer can be waiting on.
  if (mvcc_reader_) [[unlikely]] {
    assert(arena_.writes.empty() && arena_.commit_locked_hooks.empty());
    assert(arena_.seq_reads.empty() && arena_.fence_reads.empty() &&
           "snapshot readers are fast-path ineligible");
    mvcc_state_->reader_end(slot_);
    mvcc_reader_ = false;
    active_ = false;
    stats_.count_commit();
    stats_.count_ro_commit();
    finish_attempt(Outcome::Committed, /*rethrow=*/true);
    return;
  }

  // Fail-stop durability: once the log has failed, refuse any commit that
  // would produce redo records — before locks are taken, so the unwind is
  // the ordinary user-exception path.
  if (wal_ != nullptr) [[unlikely]] wal_check_available();

  if (cm_cell_ != nullptr) [[unlikely]] cm_commit_entry();

  // Fallback gate (when enabled): ordinary commits take the shared side
  // with try-lock semantics; blocking here while holding encounter-time
  // locks could deadlock against the exclusive (fallback) holder.
  std::shared_lock<std::shared_mutex> gate_guard;
  if (stm_.gate_enabled() && !gate_exempt_) {
    gate_guard = std::shared_lock<std::shared_mutex>(stm_.gate(),
                                                     std::try_to_lock);
    if (!gate_guard.owns_lock()) {
      throw ConflictAbort{AbortReason::FallbackGate};
    }
  }

  // Read-only (and hook-free) fast path: reads were validated incrementally,
  // no clock advance needed. Note an eager pessimistic *mutator* also lands
  // here (its writes went through abort hooks + abstract locks, not the STM
  // write set), so admitted unlocked reads are still revalidated — with the
  // self-pin excuse for stripes this attempt both read and mutated.
  // Staged WAL records force the full path: the publish (epoch assignment)
  // must happen inside the commit-fence bracket below.
  if (arena_.writes.empty() && arena_.commit_locked_hooks.empty() &&
      arena_.wal_buf.empty()) {
    if (!arena_.seq_reads.empty() || !arena_.fence_reads.empty())
        [[unlikely]] {
      if (!unlocked_reads_valid(/*fences_entered=*/false)) {
        throw ConflictAbort{AbortReason::ValidationFailed};
      }
    }
    clear_reader_marks();
    active_ = false;
    stats_.count_commit();
    finish_attempt(Outcome::Committed, /*rethrow=*/true);
    return;
  }

  const std::size_t nwrites = arena_.writes.size();
  if (mode_ == Mode::Lazy) {
    // Commit-time locking, arbitrary order, abort-on-busy (deadlock-free;
    // a priority CM may arbitrate a lost race first — cm_lock_conflict —
    // which can only shorten the conflict, never block unboundedly).
    int cm_retries = 4;
    for (std::size_t i = 0; i < nwrites; ++i) {
      detail::WriteEntry& e = arena_.writes[i];
      // Injected aborts mid-loop leave a partially locked write set; the
      // rollback path must release exactly the acquired prefix.
      chaos_point(ChaosPoint::CommitLock);
      while (!e.var->orec_.try_lock(&e.lock)) {
        if (cm_retries-- <= 0 || !cm_lock_conflict(e.var->orec_)) {
          throw ConflictAbort{AbortReason::WriteLocked};
        }
      }
      e.locked = true;
    }
  }

  // Every write lock is held from here on. The largest version our locks
  // displaced bounds the write version from below: generate_wv guarantees
  // `wv > lock_floor` under every scheme, so an orec's committed version
  // strictly increases and exact-version validation stays meaningful (under
  // LazyBump the clock alone cannot provide this — see DESIGN.md §7).
  Version lock_floor = 0;
  for (std::size_t i = 0; i < nwrites; ++i) {
    const detail::WriteEntry& e = arena_.writes[i];
    if (e.lock.old_version > lock_floor) lock_floor = e.lock.old_version;
  }

  // Write-version generation is scheme-dependent, and so is the validation
  // skip: `rv_ + 1 == wv` proves "no writer overlapped us" only under
  // IncOnCommit, where every committer ticks the clock after taking its
  // locks. A PassOnFailure adopter shares its wv with a concurrent winner
  // (and a committer whose locks were taken mid-flight may adopt a tick that
  // predates our snapshot), and LazyBump never ticks at all — both must
  // always revalidate.
  // Registered commit fences must be held from *before* the clock advance
  // until the replay hooks finish: the moment generate_wv ticks the clock,
  // a fresh transaction's rv covers this commit, and a snapshot shadow copy
  // taken before the replay lands would silently miss it (commit_fence.hpp).
  enter_commit_fences();
  // Logging commits additionally bracket the Wal's checkpoint fence: the
  // checkpointer's consistent cut pairs published_epoch() with var values,
  // which is only exact when no commit sits between wv generation (epoch
  // assignment happens in wal_publish, under this bracket) and write-back
  // completion. Same contract as registered commit fences, just owned by
  // the log instead of a wrapper (stm/checkpoint.hpp).
  const bool wal_fenced =
      wal_ != nullptr && (!arena_.wal_buf.empty() ||
                          (wal_->has_vars() && !arena_.writes.empty()));
  if (wal_fenced) [[unlikely]] wal_->checkpoint_fence().enter();
  Version wv;
  try {
    wv = stm_.generate_wv(lock_floor);
    // Last legal injection window: every write lock is held and wv exists,
    // but nothing has been applied — an abort here must restore the
    // displaced versions on release. Delays widen the all-locks-held
    // window. (Past the commit-locked hooks there is no aborting, only
    // delay — see run_commit_locked_hooks.)
    chaos_point(ChaosPoint::WvPublish);
    const bool skip_validation =
        scheme_ == ClockScheme::IncOnCommit && rv_ + 1 == wv;
    const bool need_validation =
        mode_ != Mode::EagerAll && !arena_.reads.empty() && !skip_validation;
    if (need_validation) chaos_point(ChaosPoint::TxnValidate);
    if (need_validation && !validate_read_set()) {
      throw ConflictAbort{AbortReason::ValidationFailed};
    }
    // Admitted unlocked reads are validated unconditionally — the
    // skip_validation shortcut proves no *versioned* writer overlapped, but
    // sequence words are also bumped by pessimistic mutators that never
    // tick the clock. Own commit fences are entered by now, so exactly one
    // own bracket over the observed word is excused.
    if (!arena_.seq_reads.empty() || !arena_.fence_reads.empty())
        [[unlikely]] {
      if (!unlocked_reads_valid(/*fences_entered=*/true)) {
        throw ConflictAbort{AbortReason::ValidationFailed};
      }
    }
  } catch (...) {
    if (wal_fenced) [[unlikely]] wal_->checkpoint_fence().exit();
    exit_commit_fences();
    throw;
  }

  // The commit point. Replay logs are applied here, behind the STM's own
  // locks (§4: "applied atomically, behind the STM's native locking
  // mechanisms"). These hooks must not throw.
  run_commit_locked_hooks();
  // Publish the redo records while every write lock (and commit fence) is
  // still held: conflicting commits are serialized across this point, so
  // the epochs the WAL hands out linearize conflicting transactions and
  // recovery can replay strictly by epoch.
  if (wal_ != nullptr) [[unlikely]] wal_publish();
  exit_commit_fences();

  // MVCC: preserve every value this commit displaces, before the lazy
  // write-back overwrites it and before any lock release publishes wv.
  if (mvcc_state_ != nullptr) [[unlikely]] mvcc_publish_chains();

  if (mode_ == Mode::Lazy) {
    for (std::size_t i = 0; i < nwrites; ++i) {
      detail::WriteEntry& e = arena_.writes[i];
      if (e.has_redo) {
        std::memcpy(e.var->data_, e.redo.data(e.var->size_), e.var->size_);
      }
    }
  }
  release_locks(wv);
  // The checkpoint-fence bracket ends only after write-back *and* lock
  // release: a cut that observed the fence quiescent must never see a
  // half-written (still-locked) var paired with this commit's epoch.
  if (wal_fenced) [[unlikely]] wal_->checkpoint_fence().exit();
  // MVCC: make this commit visible to the *next* snapshot reader. Under
  // LazyBump the clock is normally caught up lazily by readers that trip
  // over a too-new version and retry — but snapshot readers never retry, so
  // without this a reader beginning after we return would pin rv < wv and
  // read the pre-commit state. No-op under the other schemes (clock >= wv).
  if (mvcc_state_ != nullptr) [[unlikely]] stm_.clock_catch_up(wv);
  clear_reader_marks();
  active_ = false;
  stats_.count_commit();
  finish_attempt(Outcome::Committed, /*rethrow=*/true);
  // Strict durability ack: block on the group committer's fsync *after* the
  // in-memory commit is fully torn down (locks released, hooks run) — the
  // wait must never extend any conflict window. On a failed log this throws
  // WalUnavailable out of an already-committed atomically call: the
  // in-memory effect stands, the durability guarantee does not (DESIGN.md
  // §14 spells out this contract).
  if (wal_epoch_ != 0) [[unlikely]] wal_wait_strict();
}

void Txn::enter_commit_fences() noexcept {
  for (CommitFence* f : arena_.commit_fences) f->enter();
}

void Txn::exit_commit_fences() noexcept {
  for (CommitFence* f : arena_.commit_fences) f->exit();
}

void Txn::run_commit_locked_hooks() noexcept {
  if (chaos_ != nullptr && !arena_.commit_locked_hooks.empty()) [[unlikely]] {
    // Past the commit point: replay application may only be delayed, never
    // aborted (the hooks themselves must not throw either).
    chaos_delay_only(ChaosPoint::ReplayApply);
  }
  for (auto& h : arena_.commit_locked_hooks) h();
}

void Txn::wal_log_slow(std::uint32_t stream, const void* data, std::size_t n) {
  assert(active_);
  // Redo records describe an operation against *current* state —
  // incompatible with running from a historical snapshot. Like a validated
  // read, logging demotes (or retries) the attempt as an ordinary writer.
  if (mvcc_reader_) [[unlikely]] mvcc_promote();
  if (mvcc_state_ != nullptr) [[unlikely]] mvcc_ineligible_ = true;
  Wal::stage_record(arena_.wal_buf, stream, data, n);
  ++arena_.wal_records;
}

void Txn::wal_check_available() {
  if (!wal_->failed()) [[likely]] return;
  // The write check is conservative (any write while vars are registered
  // counts, even to an unregistered var): refusing a commit that would not
  // have logged is safe; the converse would let acked state outrun the
  // durable prefix.
  const bool logging = !arena_.wal_buf.empty() ||
                       (wal_->has_vars() && !arena_.writes.empty());
  // FailStop widens the refusal to *every* mutating commit — writes,
  // replay hooks, or staged records — so in-memory state freezes at the
  // failure point; read-only transactions still commit under both modes.
  const bool mutating = !arena_.writes.empty() ||
                        !arena_.commit_locked_hooks.empty() ||
                        !arena_.wal_buf.empty();
  if (logging ||
      (stm_.options().wal_fail_mode == WalFailMode::FailStop && mutating)) {
    stats_.count_wal_refused();
    throw WalUnavailable("stm wal failed (" + wal_->options().dir +
                         "): durable commits are refused");
  }
}

void Txn::wal_publish() {
  // Serialize registered raw-var writes from the write set. At this point
  // the write set is final and validated: Lazy redo buffers hold the new
  // values, eager writes already landed in place.
  if (wal_->has_vars() && !arena_.writes.empty()) [[unlikely]] {
    const std::size_t n = arena_.writes.size();
    for (std::size_t i = 0; i < n; ++i) {
      detail::WriteEntry& e = arena_.writes[i];
      const void* value;
      if (mode_ == Mode::Lazy) {
        if (!e.has_redo) continue;
        value = e.redo.data(e.var->size_);
      } else {
        if (!e.wrote) continue;
        value = e.var->data_;
      }
      std::uint64_t id;
      if (!wal_->var_id(e.var, id)) continue;
      Wal::stage_var_record(arena_.wal_buf, id, value, e.var->size_);
      ++arena_.wal_records;
    }
  }
  if (arena_.wal_buf.empty()) return;
  wal_epoch_ = wal_->publish(arena_.wal_buf.data(), arena_.wal_buf.size(),
                             arena_.wal_records);
  stats_.count_wal_publish(arena_.wal_records, arena_.wal_buf.size());
}

void Txn::wal_wait_strict() {
  if (wal_->options().durability != WalDurability::Strict) return;
  const std::uint64_t t0 = now_ns();
  wal_->wait_durable(wal_epoch_);
  stats_.count_wal_wait_ns(now_ns() - t0);
}

void Txn::rollback(AbortReason reason) noexcept {
  if (!active_) return;  // commit already completed; nothing to unwind
  stats_.count_abort(reason);
  if (reason != AbortReason::ChaosInjected) ++eligible_attempts_;
  if (mvcc_state_ != nullptr) [[unlikely]] {
    if (mvcc_reader_) {
      mvcc_state_->reader_end(slot_);
      mvcc_reader_ = false;
    }
    // Auto-detection (StmOptions::mvcc_auto_readonly): an attempt that
    // aborted without doing anything writer-shaped — no buffered or eager
    // writes, no commit-locked/abort hooks, no abstract-lock stripes, no
    // validated reads (flagged via mvcc_ineligible_) — retries in snapshot
    // mode, where it cannot conflict again.
    if (!mvcc_ineligible_ && stm_.options().mvcc_auto_readonly &&
        arena_.writes.empty() && arena_.commit_locked_hooks.empty() &&
        arena_.abort_hooks.empty() && arena_.lock_holds.empty() &&
        arena_.seq_reads.empty() && arena_.fence_reads.empty() &&
        arena_.seq_holds.empty()) {
      // Attempts that used the optimistic read fast path retry on it (a
      // snapshot reader is fast-path ineligible, and base reads would not
      // come from the pinned snapshot anyway).
      mvcc_try_snapshot_ = true;
    }
  }
  if (cm_cell_ != nullptr) {
    // Karma: work this aborted attempt performed and will redo. Counted
    // from the attempt's logs (free — no per-access counter): read set +
    // write set + visible-reader marks (EagerAll logs no reads).
    karma_ += arena_.reads.size() + arena_.writes.size() +
              arena_.reader_marks.size();
  }

  // Proust inverse operations: reverse order, while this transaction's STM
  // locks (covering its conflict-abstraction locations) are still held. A
  // throwing inverse cannot be propagated from this noexcept unwind path;
  // swallow it and keep running the earlier inverses — skipping them would
  // leave the abstract state partially rolled back, which is strictly worse.
  for (auto it = arena_.abort_hooks.rbegin(); it != arena_.abort_hooks.rend();
       ++it) {
    try {
      (*it)();
    } catch (...) {
    }
  }

  undo_writes();
  // Release with the displaced versions so readers never observe a version
  // regression.
  for (std::size_t i = arena_.writes.size(); i-- > 0;) {
    detail::WriteEntry& e = arena_.writes[i];
    if (e.locked) {
      e.var->orec_.unlock(e.lock.old_version);
      e.locked = false;
    }
  }
  clear_reader_marks();
  active_ = false;
  finish_attempt(Outcome::Aborted, /*rethrow=*/false);
}

void Txn::finish_attempt(Outcome outcome, bool rethrow) {
  // Run-all-then-rethrow: every hook runs even if an earlier one throws.
  // A LAP's stripe-release finish hook can sit anywhere in the list, so
  // stopping at the first exception would leak abstract locks held by
  // hooks registered after the thrower.
  std::exception_ptr first;
  if (outcome == Outcome::Committed) {
    for (auto& h : arena_.commit_hooks) {
      try {
        h();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
  }
  for (auto& h : arena_.finish_hooks) {
    try {
      h(outcome);
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (chaos_ != nullptr) [[unlikely]] verify_teardown();
  reset_attempt_state();
  if (rethrow && first) std::rethrow_exception(first);
}

void Txn::verify_teardown() noexcept {
  const std::size_t nwrites = arena_.writes.size();
  for (std::size_t i = 0; i < nwrites; ++i) {
    if (arena_.writes[i].locked) {
      chaos_->report_leak("orec still locked after attempt finished");
      break;
    }
  }
  for (const TxnArena::LockHold& h : arena_.lock_holds) {
    // release_all zeroes the hold counts; a nonzero count here means some
    // LAP's finish hook never ran (or ran and failed to release).
    if (h.readers != 0 || h.writers != 0) {
      chaos_->report_leak("abstract-lock stripe still held after finish hooks");
      break;
    }
  }
  if (!arena_.reader_marks.empty()) {
    chaos_->report_leak("visible-reader marks not cleared");
  }
  for (const TxnArena::SeqHold& h : arena_.seq_holds) {
    if (h.word != nullptr) {
      chaos_->report_leak("sequence word still odd after finish hooks");
      break;
    }
  }
}

void Txn::chaos_hit(ChaosPoint p) {
  const ChaosAction a = chaos_->decide(p);
  if (a == ChaosAction::None) [[likely]] return;
  stats_.count_injected(p);
  if (a == ChaosAction::Delay) {
    chaos_->inject_delay();
    return;
  }
  // Abort — and Timeout, which has no meaning at a plain point — become a
  // spurious conflict, exercising the same unwind as a real one.
  throw ConflictAbort{AbortReason::ChaosInjected};
}

bool Txn::chaos_timeout_hit(ChaosPoint p) {
  const ChaosAction a = chaos_->decide(p);
  if (a == ChaosAction::None) [[likely]] return false;
  stats_.count_injected(p);
  switch (a) {
    case ChaosAction::Delay:
      chaos_->inject_delay();
      return false;
    case ChaosAction::Timeout:
      return true;  // caller owns the timeout-recovery path
    default:
      throw ConflictAbort{AbortReason::ChaosInjected};
  }
}

void Txn::chaos_delay_only(ChaosPoint p) noexcept {
  // Every counted decision must have an effect: non-Delay draws are coerced
  // to a delay at points where aborting is no longer legal.
  if (chaos_->decide(p) == ChaosAction::None) return;
  stats_.count_injected(p);
  chaos_->inject_delay();
}

void Txn::reset_attempt_state() noexcept {
  arena_.reset_attempt();
  write_bloom_ = 0;
  write_table_on_ = false;
}

}  // namespace proust::stm
