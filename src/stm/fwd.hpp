// Forward declarations and small shared vocabulary types for the STM.
#pragma once

#include <cstddef>
#include <cstdint>

namespace proust::stm {

/// Monotone version timestamps drawn from a per-STM global clock.
using Version = std::uint64_t;

/// Destructive-interference granularity used to pad per-thread cells and
/// transactional variables so adjacent instances never share a cache line.
inline constexpr std::size_t kCacheLine = 64;

class Stm;
class Txn;
class VarBase;
class ChaosPolicy;
class CommitFence;
class ContentionManager;
struct CmSlot;
class CmState;
class MvccState;
struct StallReport;
class Wal;

/// StmOptions::wal_fail_mode — what a permanently-failed log refuses (see
/// options.hpp for the full contract).
enum class WalFailMode : std::uint8_t {
  ReadOnlyDurability,  // refuse only commits that would log redo records
  FailStop,            // refuse every mutating commit once the log failed
};

/// How the STM detects conflicts — the right-hand table of the paper's
/// Figure 1. The mode is a property of the `Stm` runtime instance.
enum class Mode {
  /// TL2-style: commit-time (lazy) write locking, lazy read validation.
  /// Lazy r/w + lazy w/w detection.
  Lazy,
  /// TinySTM-style write-through: encounter-time write locking (eager w/w),
  /// timestamp-extension reads (r/w conflicts surface late — lazy r/w).
  EagerWrite,
  /// Encounter-time write locking plus visible readers: both r/w and w/w
  /// conflicts are detected eagerly. This is the STM class required by
  /// Theorem 5.2 for Eager/Optimistic Proust to be opaque.
  EagerAll,
};

constexpr const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::Lazy: return "Lazy";
    case Mode::EagerWrite: return "EagerWrite";
    case Mode::EagerAll: return "EagerAll";
  }
  return "?";
}

/// Why a transaction attempt ended.
enum class Outcome { Committed, Aborted };

/// Fine-grained abort reasons, kept for the statistics the benchmarks report.
enum class AbortReason : std::uint8_t {
  None = 0,
  ReadLocked,        // read encountered a foreign write lock
  ReadVersion,       // read saw a version newer than the snapshot
  ValidationFailed,  // commit/extension-time read-set validation failed
  WriteLocked,       // write-lock acquisition found a foreign owner
  VisibleReader,     // eager-all writer yielded to visible readers
  AbstractLockTimeout,  // pessimistic LAP gave up waiting for an abstract lock
  FallbackGate,      // commit yielded to an in-flight irrevocable fallback
  Explicit,          // user called Txn::abort()
  ChaosInjected,     // spurious abort injected by the chaos policy
  CmKilled,          // aborted on request of a higher-priority transaction
  MvccPromote,       // snapshot-mode attempt wrote after reading; retry as writer
  kCount,
};

constexpr const char* to_string(AbortReason r) noexcept {
  switch (r) {
    case AbortReason::None: return "none";
    case AbortReason::ReadLocked: return "read-locked";
    case AbortReason::ReadVersion: return "read-version";
    case AbortReason::ValidationFailed: return "validation";
    case AbortReason::WriteLocked: return "write-locked";
    case AbortReason::VisibleReader: return "visible-reader";
    case AbortReason::AbstractLockTimeout: return "abstract-lock-timeout";
    case AbortReason::FallbackGate: return "fallback-gate";
    case AbortReason::Explicit: return "explicit";
    case AbortReason::ChaosInjected: return "chaos-injected";
    case AbortReason::CmKilled: return "cm-killed";
    case AbortReason::MvccPromote: return "mvcc-promote";
    default: return "?";
  }
}

/// Where the fault-injection layer (stm/chaos.hpp) can perturb an attempt.
/// Every failure path Theorems 5.1/5.2 rely on sits behind one of these
/// gates, so the chaos suite can manufacture the adversity that normally
/// needs an unlucky scheduler.
enum class ChaosPoint : std::uint8_t {
  TxnRead = 0,     // transactional read / conflict-abstraction read-back
  TxnValidate,     // read-set validation & timestamp extension
  CommitLock,      // write-lock acquisition (commit-time or encounter-time)
  WvPublish,       // after wv generation, before the commit point
  LapAcquire,      // pessimistic abstract-lock acquisition (core/lap.hpp)
  LockTransition,  // reentrant-RW-lock CAS/park transitions (sync layer)
  ReplayApply,     // replay-log application (commit-locked hooks)
  FastPathRead,    // optimistic unlocked read admission (forces the slow path)
  // WAL gates (stm/wal.hpp). These run on the group-committer thread; a
  // Crash draw _exit()s the process there, which is how the crash-matrix
  // suite manufactures torn appends, unsealed batches, lost fsyncs and
  // half-finished segment rotations.
  WalAppend,       // batch write(2) — a crash here leaves a torn tail
  WalSeal,         // after the batch is drained, before its header is written
  WalFsync,        // after write, before fsync — acked-relaxed data at risk
  WalRotate,       // between tmp-segment creation and its rename
  // Checkpoint gates (stm/checkpoint.hpp). These run on the checkpointer
  // thread; a Crash draw _exit()s there, so the extended crash matrix can
  // kill the process at every step of the write-tmp/fsync/rename/retire
  // protocol and prove recovery still yields a committed prefix.
  CkptBegin,       // before the consistent cut is taken
  CkptWrite,       // checkpoint tmp write(2) — a crash here tears the tmp
  CkptFsync,       // after the tmp is written, before its fsync
  CkptRename,      // between the tmp fsync and the rename into place
  CkptRetire,      // checkpoint durable, before subsumed segments retire
  kCount,
};

inline constexpr std::size_t kNumChaosPoints =
    static_cast<std::size_t>(ChaosPoint::kCount);

constexpr const char* to_string(ChaosPoint p) noexcept {
  switch (p) {
    case ChaosPoint::TxnRead: return "txn-read";
    case ChaosPoint::TxnValidate: return "txn-validate";
    case ChaosPoint::CommitLock: return "commit-lock";
    case ChaosPoint::WvPublish: return "wv-publish";
    case ChaosPoint::LapAcquire: return "lap-acquire";
    case ChaosPoint::LockTransition: return "lock-transition";
    case ChaosPoint::ReplayApply: return "replay-apply";
    case ChaosPoint::FastPathRead: return "fast-path-read";
    case ChaosPoint::WalAppend: return "wal-append";
    case ChaosPoint::WalSeal: return "wal-seal";
    case ChaosPoint::WalFsync: return "wal-fsync";
    case ChaosPoint::WalRotate: return "wal-rotate";
    case ChaosPoint::CkptBegin: return "ckpt-begin";
    case ChaosPoint::CkptWrite: return "ckpt-write";
    case ChaosPoint::CkptFsync: return "ckpt-fsync";
    case ChaosPoint::CkptRename: return "ckpt-rename";
    case ChaosPoint::CkptRetire: return "ckpt-retire";
    default: return "?";
  }
}

/// Control-flow exception thrown to unwind an attempt that must retry.
/// User code must be exception-safe through transactional regions (RAII);
/// catching this type in user code and not rethrowing is a bug.
struct ConflictAbort {
  AbortReason reason;
};

}  // namespace proust::stm
