#include "stm/watchdog.hpp"

#include <cstdio>
#include <sstream>

#include "stm/chaos.hpp"
#include "stm/contention.hpp"
#include "stm/stm.hpp"

namespace proust::stm {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string StallReport::to_string() const {
  std::ostringstream os;
  os << (kind == Kind::StalledEpoch ? "stalled-epoch" : "gate-budget-overrun")
     << " stalled_ns=" << stalled_ns << " commits=" << commits
     << " starts=" << starts;
  if (chaos_seed != 0) os << " chaos_seed=" << chaos_seed;
  if (gate_holder != ~0u) os << " gate_holder=" << gate_holder;
  if (boosted_slot != ~0u) os << " boosted=" << boosted_slot;
  for (const SlotInfo& s : active) {
    os << " [slot=" << s.slot << " attempts=" << s.attempts
       << " stripes=" << s.stripes << " birth=" << s.birth
       << " pri=" << s.priority << "]";
  }
  return os.str();
}

Watchdog::Watchdog(Stm& stm) : Watchdog(stm, Config{}) {}

Watchdog::Watchdog(Stm& stm, Config cfg) : stm_(stm), cfg_(cfg) {
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
}

void Watchdog::deliver(const StallReport& report) {
  const auto& handler = stm_.options().on_stall;
  if (handler) {
    handler(report);
  } else {
    std::fprintf(stderr, "[proust watchdog] %s\n", report.to_string().c_str());
  }
}

void Watchdog::run() {
  std::uint64_t last_commits = stm_.stats().snapshot().commits;
  std::uint64_t last_starts = stm_.stats().snapshot().starts;
  std::uint64_t stable_since = now_ns();
  // One report per distinct gate hold: remember the hold we last flagged.
  std::uint64_t reported_gate_t0 = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(cfg_.poll);
    const std::uint64_t now = now_ns();
    const StatsSnapshot snap = stm_.stats().snapshot();

    // --- Fallback-gate budget -------------------------------------------
    const auto budget = stm_.options().fallback_budget;
    const std::uint64_t gate_t0 = stm_.gate_entered_ns();
    if (budget.count() > 0 && gate_t0 != 0 && gate_t0 != reported_gate_t0 &&
        now > gate_t0 &&
        now - gate_t0 > static_cast<std::uint64_t>(budget.count())) {
      reported_gate_t0 = gate_t0;
      budget_overruns_.fetch_add(1, std::memory_order_acq_rel);
      StallReport r;
      r.kind = StallReport::Kind::GateBudgetOverrun;
      r.stalled_ns = now - gate_t0;
      r.commits = snap.commits;
      r.starts = snap.starts;
      r.gate_holder = stm_.gate_holder();
      if (const ChaosPolicy* c = stm_.options().chaos) r.chaos_seed = c->seed();
      deliver(r);
    }

    // --- Commit-epoch advance -------------------------------------------
    if (snap.commits != last_commits) {
      last_commits = snap.commits;
      last_starts = snap.starts;
      stable_since = now;
      continue;
    }

    // Epoch is flat. Is anyone actually trying? Two signals: active cells
    // in the CM slot table (tracking policies publish them), and attempt
    // starts advancing with zero commits landing (works for every policy).
    StallReport r;
    CmState& cm = stm_.cm_state();
    const unsigned slots = ThreadRegistry::high_water();
    unsigned oldest_slot = ~0u;
    std::uint64_t oldest_birth = ~std::uint64_t{0};
    for (unsigned i = 0; i < slots && i < ThreadRegistry::kMaxSlots; ++i) {
      const CmSlot& cell = cm.slot(i);
      if (cell.token.load(std::memory_order_acquire) == 0) continue;
      StallReport::SlotInfo info;
      info.slot = i;
      info.attempts = cell.attempts.load(std::memory_order_relaxed);
      info.stripes = cell.stripes.load(std::memory_order_relaxed);
      info.birth = cell.birth.load(std::memory_order_relaxed);
      info.priority = cell.priority.load(std::memory_order_relaxed);
      r.active.push_back(info);
      if (info.birth < oldest_birth) {
        oldest_birth = info.birth;
        oldest_slot = i;
      }
    }
    const bool working =
        !r.active.empty() || snap.starts != last_starts || gate_t0 != 0;
    last_starts = snap.starts;
    if (!working) {
      stable_since = now;  // genuinely idle, not stalled
      continue;
    }
    if (now - stable_since <
        static_cast<std::uint64_t>(cfg_.stall_after.count())) {
      continue;
    }

    stalls_.fetch_add(1, std::memory_order_acq_rel);
    r.kind = StallReport::Kind::StalledEpoch;
    r.stalled_ns = now - stable_since;
    r.commits = snap.commits;
    r.starts = snap.starts;
    if (gate_t0 != 0) r.gate_holder = stm_.gate_holder();
    if (const ChaosPolicy* c = stm_.options().chaos) r.chaos_seed = c->seed();
    // Escalate: crown the oldest active call as the elder. Committers then
    // defer to it and lock waiters shed — the priority policies' own
    // starvation-recovery window, applied by force. Requires a tracking CM
    // (otherwise no cell carries a birth to rank by).
    if (cfg_.escalate && oldest_slot != ~0u) {
      cm.force_elder(oldest_slot);
      escalations_.fetch_add(1, std::memory_order_acq_rel);
      r.boosted_slot = oldest_slot;
    }
    deliver(r);
    stable_since = now;  // re-arm; re-fires after another stall_after
  }
}

}  // namespace proust::stm
