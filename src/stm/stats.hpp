// Per-STM statistics: padded per-thread-slot counters, aggregated on demand.
// The benchmark harness reports commit/abort/false-conflict rates from these.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stm/fwd.hpp"
#include "stm/thread_registry.hpp"

namespace proust::stm {

struct StatsSnapshot {
  std::uint64_t starts = 0;     // transaction attempts begun
  std::uint64_t commits = 0;    // attempts committed
  std::uint64_t reads = 0;      // transactional reads
  std::uint64_t writes = 0;     // transactional writes
  std::uint64_t extensions = 0; // successful timestamp extensions
  std::array<std::uint64_t, static_cast<std::size_t>(AbortReason::kCount)>
      aborts{};
  /// Chaos faults injected at transaction-level points (stm/chaos.hpp).
  /// Sync-layer LockTransition injections have no transaction context and
  /// are counted by the ChaosPolicy itself; their entry here stays zero.
  std::array<std::uint64_t, kNumChaosPoints> injected{};

  std::uint64_t total_aborts() const noexcept;
  std::uint64_t total_injected() const noexcept;
  double abort_ratio() const noexcept;  // aborts / starts
  std::string to_string() const;
};

class Stats {
  struct alignas(kCacheLine) Cell {
    std::uint64_t starts = 0;
    std::uint64_t commits = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t extensions = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(AbortReason::kCount)>
        aborts{};
    std::array<std::uint64_t, kNumChaosPoints> injected{};
  };

 public:
  /// A resolved pointer to one thread slot's padded counter cell. Txn caches
  /// one at construction so per-read/per-write accounting is a single
  /// increment instead of a ThreadRegistry::slot() TLS lookup per event.
  class Counters {
   public:
    void count_start() noexcept { c_->starts += 1; }
    void count_commit() noexcept { c_->commits += 1; }
    void count_read() noexcept { c_->reads += 1; }
    void count_write() noexcept { c_->writes += 1; }
    void count_extension() noexcept { c_->extensions += 1; }
    void count_abort(AbortReason r) noexcept {
      c_->aborts[static_cast<std::size_t>(r)] += 1;
    }
    void count_injected(ChaosPoint p) noexcept {
      c_->injected[static_cast<std::size_t>(p)] += 1;
    }

   private:
    friend class Stats;
    explicit Counters(Cell* c) noexcept : c_(c) {}
    Cell* c_;
  };

  /// Counter handle for a specific registry slot (must be the caller's own).
  Counters counters(unsigned slot) noexcept { return Counters(&cells_[slot]); }

  void count_start() noexcept { cell().starts += 1; }
  void count_commit() noexcept { cell().commits += 1; }
  void count_read() noexcept { cell().reads += 1; }
  void count_write() noexcept { cell().writes += 1; }
  void count_extension() noexcept { cell().extensions += 1; }
  void count_abort(AbortReason r) noexcept {
    cell().aborts[static_cast<std::size_t>(r)] += 1;
  }
  void count_injected(ChaosPoint p) noexcept {
    cell().injected[static_cast<std::size_t>(p)] += 1;
  }

  StatsSnapshot snapshot() const;
  void reset();

 private:
  Cell& cell() noexcept { return cells_[ThreadRegistry::slot()]; }

  std::array<Cell, ThreadRegistry::kMaxSlots> cells_{};
};

}  // namespace proust::stm
