// Per-STM statistics: padded per-thread-slot counters, aggregated on demand.
// The benchmark harness reports commit/abort/false-conflict rates from these.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "stm/fwd.hpp"
#include "stm/thread_registry.hpp"

namespace proust::stm {

/// Buckets of the per-call attempt histogram: exact for 1..16 attempts
/// (buckets 0..15), then power-of-two ranges (bucket 16 = 17..32,
/// 17 = 33..64, ...) up to a catch-all tail. Retry distributions are
/// heavy-tailed, so the exact low buckets carry the p50 and the log tail
/// carries the p99/max story.
inline constexpr std::size_t kAttemptBuckets = 32;

constexpr std::size_t attempt_bucket(std::uint64_t attempts) noexcept {
  if (attempts == 0) attempts = 1;
  if (attempts <= 16) return attempts - 1;
  const std::size_t b = 16 + std::bit_width(attempts - 1) - 5;
  return b < kAttemptBuckets ? b : kAttemptBuckets - 1;
}

/// Inclusive upper bound of a histogram bucket (for percentile reporting).
constexpr std::uint64_t attempt_bucket_bound(std::size_t bucket) noexcept {
  return bucket < 16 ? bucket + 1 : std::uint64_t{32} << (bucket - 16);
}

struct StatsSnapshot {
  std::uint64_t starts = 0;     // transaction attempts begun
  std::uint64_t commits = 0;    // attempts committed
  std::uint64_t reads = 0;      // transactional reads
  std::uint64_t writes = 0;     // transactional writes
  std::uint64_t extensions = 0; // successful timestamp extensions
  std::array<std::uint64_t, static_cast<std::size_t>(AbortReason::kCount)>
      aborts{};
  /// Chaos faults injected at transaction-level points (stm/chaos.hpp).
  /// Sync-layer LockTransition injections have no transaction context and
  /// are counted by the ChaosPolicy itself; their entry here stays zero.
  std::array<std::uint64_t, kNumChaosPoints> injected{};

  /// Attempts-per-atomically-call histogram (see attempt_bucket) and the
  /// exact worst case. One histogram entry per *call*, not per attempt.
  std::array<std::uint64_t, kAttemptBuckets> attempts_hist{};
  std::uint64_t max_attempts = 0;

  /// Cumulative wait time, in nanoseconds, split by where it was spent:
  /// inter-attempt backoff pauses, bounded contention-manager waits at
  /// conflicts (incl. elder deference), and admission-control throttling.
  std::uint64_t backoff_ns = 0;
  std::uint64_t cm_wait_ns = 0;
  std::uint64_t throttle_ns = 0;
  std::uint64_t throttle_waits = 0;  // admit() calls that had to block

  /// Irrevocable-fallback gate holds: count, total and worst hold time.
  std::uint64_t gate_holds = 0;
  std::uint64_t gate_ns = 0;
  std::uint64_t gate_max_ns = 0;

  /// MVCC mode: commits that took the snapshot read-only path (no read set,
  /// no validation, cannot abort), version-chain entries pushed by writers,
  /// entries reclaimed through EBR, and the longest chain ever observed by a
  /// pushing writer.
  std::uint64_t ro_commits = 0;
  std::uint64_t mvcc_pushed = 0;
  std::uint64_t mvcc_reclaimed = 0;
  std::uint64_t mvcc_chain_max = 0;

  /// Optimistic read fast path (DESIGN.md §12): unlocked reads admitted
  /// without the abstract lock, and attempts that were eligible but fell
  /// back to the locked slow path (unstable word, frozen snapshot, chaos).
  std::uint64_t fastpath_hits = 0;
  std::uint64_t fastpath_fallbacks = 0;

  /// Durability (DESIGN.md §14): commits that published redo records to the
  /// WAL, records/bytes staged, and time strict commits spent blocked on the
  /// group committer's fsync acknowledgement.
  std::uint64_t wal_publishes = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_strict_waits = 0;
  std::uint64_t wal_wait_ns = 0;
  /// Commits refused because the log had failed (WalUnavailable thrown
  /// before any lock was taken — StmOptions::wal_fail_mode).
  std::uint64_t wal_refused = 0;

  std::uint64_t total_aborts() const noexcept;
  std::uint64_t total_injected() const noexcept;
  double abort_ratio() const noexcept;  // aborts / starts
  std::uint64_t total_calls() const noexcept;  // histogram mass
  /// Upper bound of the bucket holding percentile `p` (0..1) of the
  /// attempts-per-call distribution (exact below 17 attempts; the top
  /// bucket reports max_attempts). 0 when no calls were recorded.
  std::uint64_t attempts_percentile(double p) const noexcept;
  std::string to_string() const;
};

class Stats {
  struct alignas(kCacheLine) Cell {
    std::uint64_t starts = 0;
    std::uint64_t commits = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t extensions = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(AbortReason::kCount)>
        aborts{};
    std::array<std::uint64_t, kNumChaosPoints> injected{};
    std::array<std::uint64_t, kAttemptBuckets> attempts_hist{};
    std::uint64_t max_attempts = 0;
    std::uint64_t backoff_ns = 0;
    std::uint64_t cm_wait_ns = 0;
    std::uint64_t throttle_ns = 0;
    std::uint64_t throttle_waits = 0;
    std::uint64_t gate_holds = 0;
    std::uint64_t gate_ns = 0;
    std::uint64_t gate_max_ns = 0;
    std::uint64_t ro_commits = 0;
    std::uint64_t mvcc_pushed = 0;
    std::uint64_t mvcc_reclaimed = 0;
    std::uint64_t mvcc_chain_max = 0;
    std::uint64_t fastpath_hits = 0;
    std::uint64_t fastpath_fallbacks = 0;
    std::uint64_t wal_publishes = 0;
    std::uint64_t wal_records = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t wal_strict_waits = 0;
    std::uint64_t wal_wait_ns = 0;
    std::uint64_t wal_refused = 0;
  };

  // Each cell has exactly one writer (its owning slot's thread), but the
  // watchdog aggregates snapshot() while workers are still running. Relaxed
  // atomic_ref load/store pairs keep the single-writer increments tear-free
  // for a concurrent reader without an RMW: both sides compile to plain
  // moves on x86-64, so the hot-path cost is unchanged.
  static std::uint64_t ld(const std::uint64_t& v) noexcept {
    return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(v))
        .load(std::memory_order_relaxed);
  }
  static void st(std::uint64_t& v, std::uint64_t x) noexcept {
    std::atomic_ref<std::uint64_t>(v).store(x, std::memory_order_relaxed);
  }
  static void bump(std::uint64_t& v, std::uint64_t d = 1) noexcept {
    st(v, ld(v) + d);
  }

 public:
  /// A resolved pointer to one thread slot's padded counter cell. Txn caches
  /// one at construction so per-read/per-write accounting is a single
  /// increment instead of a ThreadRegistry::slot() TLS lookup per event.
  class Counters {
   public:
    void count_start() noexcept { bump(c_->starts); }
    void count_commit() noexcept { bump(c_->commits); }
    void count_read() noexcept { bump(c_->reads); }
    void count_write() noexcept { bump(c_->writes); }
    void count_extension() noexcept { bump(c_->extensions); }
    void count_abort(AbortReason r) noexcept {
      bump(c_->aborts[static_cast<std::size_t>(r)]);
    }
    void count_injected(ChaosPoint p) noexcept {
      bump(c_->injected[static_cast<std::size_t>(p)]);
    }
    /// One finished atomically() call that needed `attempts` attempts.
    void count_call(std::uint64_t attempts) noexcept {
      bump(c_->attempts_hist[attempt_bucket(attempts)]);
      if (attempts > ld(c_->max_attempts)) st(c_->max_attempts, attempts);
    }
    void count_backoff_ns(std::uint64_t ns) noexcept {
      bump(c_->backoff_ns, ns);
    }
    void count_cm_wait_ns(std::uint64_t ns) noexcept {
      bump(c_->cm_wait_ns, ns);
    }
    void count_throttle_ns(std::uint64_t ns) noexcept {
      bump(c_->throttle_ns, ns);
      bump(c_->throttle_waits);
    }
    void count_gate_hold_ns(std::uint64_t ns) noexcept {
      bump(c_->gate_holds);
      bump(c_->gate_ns, ns);
      if (ns > ld(c_->gate_max_ns)) st(c_->gate_max_ns, ns);
    }
    void count_ro_commit() noexcept { bump(c_->ro_commits); }
    /// `n` chain entries pushed this commit; `chain_len` the longest chain
    /// the writer left behind.
    void count_mvcc_push(std::uint64_t n, std::uint64_t chain_len) noexcept {
      bump(c_->mvcc_pushed, n);
      if (chain_len > ld(c_->mvcc_chain_max)) st(c_->mvcc_chain_max, chain_len);
    }
    void count_mvcc_reclaim(std::uint64_t n) noexcept {
      bump(c_->mvcc_reclaimed, n);
    }
    void count_fastpath_hit() noexcept { bump(c_->fastpath_hits); }
    void count_fastpath_fallback() noexcept { bump(c_->fastpath_fallbacks); }
    /// One commit that published `records` redo records (`bytes` staged
    /// payload incl. per-record framing) to the WAL.
    void count_wal_publish(std::uint64_t records, std::uint64_t bytes) noexcept {
      bump(c_->wal_publishes);
      bump(c_->wal_records, records);
      bump(c_->wal_bytes, bytes);
    }
    /// One strict commit that blocked `ns` on the durable-epoch wait.
    void count_wal_wait_ns(std::uint64_t ns) noexcept {
      bump(c_->wal_strict_waits);
      bump(c_->wal_wait_ns, ns);
    }
    /// One commit refused because the log had failed (wal_fail_mode).
    void count_wal_refused() noexcept { bump(c_->wal_refused); }

   private:
    friend class Stats;
    explicit Counters(Cell* c) noexcept : c_(c) {}
    Cell* c_;
  };

  /// Counter handle for a specific registry slot (must be the caller's own).
  Counters counters(unsigned slot) noexcept { return Counters(&cells_[slot]); }

  void count_start() noexcept { bump(cell().starts); }
  void count_commit() noexcept { bump(cell().commits); }
  void count_read() noexcept { bump(cell().reads); }
  void count_write() noexcept { bump(cell().writes); }
  void count_extension() noexcept { bump(cell().extensions); }
  void count_abort(AbortReason r) noexcept {
    bump(cell().aborts[static_cast<std::size_t>(r)]);
  }
  void count_injected(ChaosPoint p) noexcept {
    bump(cell().injected[static_cast<std::size_t>(p)]);
  }

  StatsSnapshot snapshot() const;
  void reset();

 private:
  Cell& cell() noexcept { return cells_[ThreadRegistry::slot()]; }

  std::array<Cell, ThreadRegistry::kMaxSlots> cells_{};
};

}  // namespace proust::stm
