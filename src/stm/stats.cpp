#include "stm/stats.hpp"

#include <sstream>

namespace proust::stm {

std::uint64_t StatsSnapshot::total_aborts() const noexcept {
  std::uint64_t t = 0;
  for (auto a : aborts) t += a;
  return t;
}

std::uint64_t StatsSnapshot::total_injected() const noexcept {
  std::uint64_t t = 0;
  for (auto n : injected) t += n;
  return t;
}

double StatsSnapshot::abort_ratio() const noexcept {
  return starts == 0 ? 0.0
                     : static_cast<double>(total_aborts()) /
                           static_cast<double>(starts);
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "starts=" << starts << " commits=" << commits
     << " aborts=" << total_aborts() << " reads=" << reads
     << " writes=" << writes << " extensions=" << extensions;
  if (total_aborts() > 0) {
    os << " [";
    bool first = true;
    for (std::size_t i = 0; i < aborts.size(); ++i) {
      if (aborts[i] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << proust::stm::to_string(static_cast<AbortReason>(i)) << "="
         << aborts[i];
    }
    os << "]";
  }
  if (total_injected() > 0) {
    os << " injected=[";
    bool first = true;
    for (std::size_t i = 0; i < injected.size(); ++i) {
      if (injected[i] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << proust::stm::to_string(static_cast<ChaosPoint>(i)) << "="
         << injected[i];
    }
    os << "]";
  }
  return os.str();
}

StatsSnapshot Stats::snapshot() const {
  StatsSnapshot s;
  const unsigned n = ThreadRegistry::high_water();
  for (unsigned i = 0; i < n && i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    s.starts += c.starts;
    s.commits += c.commits;
    s.reads += c.reads;
    s.writes += c.writes;
    s.extensions += c.extensions;
    for (std::size_t j = 0; j < c.aborts.size(); ++j) s.aborts[j] += c.aborts[j];
    for (std::size_t j = 0; j < c.injected.size(); ++j) {
      s.injected[j] += c.injected[j];
    }
  }
  return s;
}

void Stats::reset() {
  for (auto& c : cells_) c = Cell{};
}

}  // namespace proust::stm
