#include "stm/stats.hpp"

#include <sstream>

namespace proust::stm {

std::uint64_t StatsSnapshot::total_aborts() const noexcept {
  std::uint64_t t = 0;
  for (auto a : aborts) t += a;
  return t;
}

double StatsSnapshot::abort_ratio() const noexcept {
  return starts == 0 ? 0.0
                     : static_cast<double>(total_aborts()) /
                           static_cast<double>(starts);
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "starts=" << starts << " commits=" << commits
     << " aborts=" << total_aborts() << " reads=" << reads
     << " writes=" << writes << " extensions=" << extensions;
  if (total_aborts() > 0) {
    os << " [";
    bool first = true;
    for (std::size_t i = 0; i < aborts.size(); ++i) {
      if (aborts[i] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << proust::stm::to_string(static_cast<AbortReason>(i)) << "="
         << aborts[i];
    }
    os << "]";
  }
  return os.str();
}

StatsSnapshot Stats::snapshot() const {
  StatsSnapshot s;
  const unsigned n = ThreadRegistry::high_water();
  for (unsigned i = 0; i < n && i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    s.starts += c.starts;
    s.commits += c.commits;
    s.reads += c.reads;
    s.writes += c.writes;
    s.extensions += c.extensions;
    for (std::size_t j = 0; j < c.aborts.size(); ++j) s.aborts[j] += c.aborts[j];
  }
  return s;
}

void Stats::reset() {
  for (auto& c : cells_) c = Cell{};
}

}  // namespace proust::stm
