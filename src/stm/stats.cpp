#include "stm/stats.hpp"

#include <algorithm>
#include <sstream>

namespace proust::stm {

std::uint64_t StatsSnapshot::total_aborts() const noexcept {
  std::uint64_t t = 0;
  for (auto a : aborts) t += a;
  return t;
}

std::uint64_t StatsSnapshot::total_injected() const noexcept {
  std::uint64_t t = 0;
  for (auto n : injected) t += n;
  return t;
}

double StatsSnapshot::abort_ratio() const noexcept {
  return starts == 0 ? 0.0
                     : static_cast<double>(total_aborts()) /
                           static_cast<double>(starts);
}

std::uint64_t StatsSnapshot::total_calls() const noexcept {
  std::uint64_t t = 0;
  for (auto n : attempts_hist) t += n;
  return t;
}

std::uint64_t StatsSnapshot::attempts_percentile(double p) const noexcept {
  const std::uint64_t calls = total_calls();
  if (calls == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile call (1-based, ceil), then walk the buckets.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     p * static_cast<double>(calls) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < attempts_hist.size(); ++b) {
    seen += attempts_hist[b];
    if (seen >= rank) {
      const std::uint64_t bound = attempt_bucket_bound(b);
      // The top occupied bucket cannot report beyond the observed worst.
      return bound > max_attempts ? max_attempts : bound;
    }
  }
  return max_attempts;
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "starts=" << starts << " commits=" << commits
     << " aborts=" << total_aborts() << " reads=" << reads
     << " writes=" << writes << " extensions=" << extensions;
  if (total_calls() > 0) {
    os << " attempts{p50=" << attempts_percentile(0.50)
       << " p99=" << attempts_percentile(0.99) << " max=" << max_attempts
       << "}";
  }
  if (backoff_ns + cm_wait_ns + throttle_ns > 0) {
    os << " wait{backoff=" << backoff_ns << "ns cm=" << cm_wait_ns
       << "ns throttle=" << throttle_ns << "ns}";
  }
  if (gate_holds > 0) {
    os << " gate{holds=" << gate_holds << " total=" << gate_ns
       << "ns max=" << gate_max_ns << "ns}";
  }
  if (ro_commits + mvcc_pushed > 0) {
    os << " mvcc{ro_commits=" << ro_commits << " pushed=" << mvcc_pushed
       << " reclaimed=" << mvcc_reclaimed << " chain_max=" << mvcc_chain_max
       << "}";
  }
  if (fastpath_hits + fastpath_fallbacks > 0) {
    os << " fastpath{hits=" << fastpath_hits
       << " fallbacks=" << fastpath_fallbacks << "}";
  }
  if (wal_publishes + wal_refused > 0) {
    os << " wal{publishes=" << wal_publishes << " records=" << wal_records
       << " bytes=" << wal_bytes << " strict_waits=" << wal_strict_waits
       << " wait=" << wal_wait_ns << "ns refused=" << wal_refused << "}";
  }
  if (total_aborts() > 0) {
    os << " [";
    bool first = true;
    for (std::size_t i = 0; i < aborts.size(); ++i) {
      if (aborts[i] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << proust::stm::to_string(static_cast<AbortReason>(i)) << "="
         << aborts[i];
    }
    os << "]";
  }
  if (total_injected() > 0) {
    os << " injected=[";
    bool first = true;
    for (std::size_t i = 0; i < injected.size(); ++i) {
      if (injected[i] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << proust::stm::to_string(static_cast<ChaosPoint>(i)) << "="
         << injected[i];
    }
    os << "]";
  }
  return os.str();
}

StatsSnapshot Stats::snapshot() const {
  StatsSnapshot s;
  const unsigned n = ThreadRegistry::high_water();
  // Relaxed per-field loads (see the Cell accessor comment in stats.hpp):
  // the watchdog snapshots concurrently with running workers, so a snapshot
  // is a consistent-enough monotone view, not an atomic cut across cells.
  for (unsigned i = 0; i < n && i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    s.starts += ld(c.starts);
    s.commits += ld(c.commits);
    s.reads += ld(c.reads);
    s.writes += ld(c.writes);
    s.extensions += ld(c.extensions);
    for (std::size_t j = 0; j < c.aborts.size(); ++j) {
      s.aborts[j] += ld(c.aborts[j]);
    }
    for (std::size_t j = 0; j < c.injected.size(); ++j) {
      s.injected[j] += ld(c.injected[j]);
    }
    for (std::size_t j = 0; j < c.attempts_hist.size(); ++j) {
      s.attempts_hist[j] += ld(c.attempts_hist[j]);
    }
    s.max_attempts = std::max(s.max_attempts, ld(c.max_attempts));
    s.backoff_ns += ld(c.backoff_ns);
    s.cm_wait_ns += ld(c.cm_wait_ns);
    s.throttle_ns += ld(c.throttle_ns);
    s.throttle_waits += ld(c.throttle_waits);
    s.gate_holds += ld(c.gate_holds);
    s.gate_ns += ld(c.gate_ns);
    s.gate_max_ns = std::max(s.gate_max_ns, ld(c.gate_max_ns));
    s.ro_commits += ld(c.ro_commits);
    s.mvcc_pushed += ld(c.mvcc_pushed);
    s.mvcc_reclaimed += ld(c.mvcc_reclaimed);
    s.mvcc_chain_max = std::max(s.mvcc_chain_max, ld(c.mvcc_chain_max));
    s.fastpath_hits += ld(c.fastpath_hits);
    s.fastpath_fallbacks += ld(c.fastpath_fallbacks);
    s.wal_publishes += ld(c.wal_publishes);
    s.wal_records += ld(c.wal_records);
    s.wal_bytes += ld(c.wal_bytes);
    s.wal_strict_waits += ld(c.wal_strict_waits);
    s.wal_wait_ns += ld(c.wal_wait_ns);
    s.wal_refused += ld(c.wal_refused);
  }
  return s;
}

void Stats::reset() {
  // Field-wise relaxed stores rather than `c = Cell{}`: a watchdog may still
  // be snapshotting when a harness resets between runs.
  for (auto& c : cells_) {
    st(c.starts, 0);
    st(c.commits, 0);
    st(c.reads, 0);
    st(c.writes, 0);
    st(c.extensions, 0);
    for (auto& a : c.aborts) st(a, 0);
    for (auto& n2 : c.injected) st(n2, 0);
    for (auto& h : c.attempts_hist) st(h, 0);
    st(c.max_attempts, 0);
    st(c.backoff_ns, 0);
    st(c.cm_wait_ns, 0);
    st(c.throttle_ns, 0);
    st(c.throttle_waits, 0);
    st(c.gate_holds, 0);
    st(c.gate_ns, 0);
    st(c.gate_max_ns, 0);
    st(c.ro_commits, 0);
    st(c.mvcc_pushed, 0);
    st(c.mvcc_reclaimed, 0);
    st(c.mvcc_chain_max, 0);
    st(c.fastpath_hits, 0);
    st(c.fastpath_fallbacks, 0);
    st(c.wal_publishes, 0);
    st(c.wal_records, 0);
    st(c.wal_bytes, 0);
    st(c.wal_strict_waits, 0);
    st(c.wal_wait_ns, 0);
    st(c.wal_refused, 0);
  }
}

}  // namespace proust::stm
