// Ownership records. Each transactional variable owns one record inline (a
// "var-based" STM), so the STM itself introduces no aliasing-induced false
// conflicts — important because the paper's whole subject is false conflicts
// created above the STM, and we want to measure only those.
//
// Word layout:
//   free:   (version << 1) | 0
//   locked: (LockRecord*)  | 1   — the record lives in the owner's write set
//                                  and carries the owner and pre-lock version.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/fwd.hpp"

namespace proust::stm {

/// Published while an orec is locked; stable address inside the owning
/// transaction's write set.
///
/// `owner` may only be dereferenced by the owner itself (Txn lives on its
/// thread's stack); a *foreign* transaction that lost the try_lock race
/// identifies the opponent by `owner_slot` instead — the record lives in
/// arena memory that outlives the attempt, so a racy read of the slot is
/// safe (at worst stale) and indexes the contention manager's per-slot
/// priority table without touching foreign stack state.
struct LockRecord {
  Txn* owner = nullptr;
  Version old_version = 0;
  std::uint32_t owner_slot = 0;
};

class Orec {
 public:
  Orec() noexcept : word_(0) {}

  /// Raw word snapshot (acquire). Callers decode with the helpers below.
  std::uintptr_t load() const noexcept {
    return word_.load(std::memory_order_acquire);
  }

  static bool is_locked(std::uintptr_t w) noexcept { return (w & 1u) != 0; }

  static Version version_of(std::uintptr_t w) noexcept {
    return static_cast<Version>(w >> 1);
  }

  static LockRecord* owner_of(std::uintptr_t w) noexcept {
    return reinterpret_cast<LockRecord*>(w & ~std::uintptr_t{1});
  }

  /// Try to acquire: transition from the observed free word to locked-by-rec.
  /// On success, rec->old_version is filled with the displaced version.
  bool try_lock(LockRecord* rec) noexcept {
    std::uintptr_t w = word_.load(std::memory_order_acquire);
    if (is_locked(w)) return false;
    rec->old_version = version_of(w);
    const auto locked = reinterpret_cast<std::uintptr_t>(rec) | 1u;
    return word_.compare_exchange_strong(w, locked, std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  /// Release a held lock, publishing `new_version` (commit) or the displaced
  /// version (abort). Only the owner may call this.
  void unlock(Version new_version) noexcept {
    word_.store(static_cast<std::uintptr_t>(new_version) << 1,
                std::memory_order_release);
  }

 private:
  std::atomic<std::uintptr_t> word_;
};

}  // namespace proust::stm
