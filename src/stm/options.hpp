// Runtime policy knobs for the STM: the contention-management policy applied
// between retry attempts and at detected conflicts (§7 discusses how much CM
// coupling matters), the global-version-clock scheme used by the commit path,
// an optional serializing fallback that bounds retries under pathological
// contention, adaptive admission control, and the progress-watchdog hooks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/topology.hpp"
#include "stm/fwd.hpp"

namespace proust::stm {

/// Contention management: what a transaction does after an aborted attempt,
/// and — for the priority policies — how a detected conflict is arbitrated
/// against the opposing transaction (wait / abort-self / request-abort, see
/// stm/contention.hpp and DESIGN.md §10).
enum class CmPolicy : std::uint8_t {
  /// Randomized exponential backoff (default; what the evaluation uses).
  /// Conflicts are resolved requester-aborts, as in classic TL2.
  ExponentialBackoff,
  /// Surrender the processor once; no spinning. Good on oversubscribed
  /// machines, poor when the opponent needs more than one quantum.
  Yield,
  /// Retry immediately. Maximal livelock exposure; useful as the ablation
  /// baseline for the CM bench.
  None,
  /// Work-weighted priority ("Karma"): a transaction's accumulated reads +
  /// writes across its aborted attempts raise its priority, so the side that
  /// has invested more work wins conflicts. Ties wait briefly, then yield.
  Karma,
  /// Oldest-transaction-wins: priority is the call's first-attempt stamp, so
  /// age strictly orders every pair of transactions and a starving one
  /// eventually outranks all newcomers (per-transaction starvation bound —
  /// see the elder protocol in DESIGN.md §10).
  TimestampAging,
};

constexpr const char* to_string(CmPolicy p) noexcept {
  switch (p) {
    case CmPolicy::ExponentialBackoff: return "backoff";
    case CmPolicy::Yield: return "yield";
    case CmPolicy::None: return "none";
    case CmPolicy::Karma: return "karma";
    case CmPolicy::TimestampAging: return "aging";
  }
  return "?";
}

/// How a writing commit obtains its write version `wv` from the STM's global
/// clock — a design-space axis of its own (TL2's GV1/GV4/GV5 family). The
/// clock word is the one cache line every writing commit shares, so the
/// scheme decides how commit throughput scales with thread count.
///
/// The `rv + 1 == wv` validation-skip fast path is sound ONLY under
/// IncOnCommit: there every committer increments the clock *after* acquiring
/// its write locks, so `wv == rv + 1` proves no writer overlapped this
/// transaction's reads. Under PassOnFailure two commits may share one `wv`
/// (the CAS loser adopts the winner's value mid-flight), and under LazyBump
/// the clock does not tick per commit at all, so both schemes always
/// revalidate the read set (see DESIGN.md §7).
enum class ClockScheme : std::uint8_t {
  /// GV1: every writing commit does one `fetch_add` on the shared clock.
  /// Cheapest bookkeeping, keeps the validation-skip fast path, but every
  /// commit ping-pongs the clock cache line.
  IncOnCommit,
  /// GV4: CAS the clock from its observed value `g` to `g + 1`; on CAS
  /// failure reuse the winner's published value as this commit's `wv`
  /// instead of retrying. Contended commits stop fighting over the clock
  /// line — at most one RMW succeeds per tick, everyone else piggybacks.
  PassOnFailure,
  /// GV5: commit at `clock_now() + 1` without writing the clock at all; a
  /// reader that meets a too-new version bumps the clock up to it before
  /// retrying (Stm::clock_catch_up), which bounds the extra aborts this
  /// scheme trades for a write-free commit.
  LazyBump,
};

constexpr const char* to_string(ClockScheme s) noexcept {
  switch (s) {
    case ClockScheme::IncOnCommit: return "IncOnCommit";
    case ClockScheme::PassOnFailure: return "PassOnFailure";
    case ClockScheme::LazyBump: return "LazyBump";
  }
  return "?";
}

struct StmOptions {
  CmPolicy cm_policy = CmPolicy::ExponentialBackoff;

  /// Global-clock scheme used by writing commits (see ClockScheme).
  ClockScheme clock_scheme = ClockScheme::IncOnCommit;

  // --- Multi-version snapshot reads (DESIGN.md §11) ------------------------
  /// Keep a short per-Var version chain at every writing commit so that
  /// read-only transactions (declared via Stm::atomically_ro, or detected —
  /// see mvcc_auto_readonly) read a consistent start-timestamp snapshot with
  /// no read set, no validation and no aborts, regardless of concurrent
  /// writers. Writers pay one pool node push per overwritten var plus chain
  /// truncation against the minimum active snapshot; chains are reclaimed
  /// through epoch-based reclamation (common/ebr.hpp). Off by default —
  /// non-MVCC configs take one never-taken branch on the read path and pay
  /// nothing at commit.
  bool mvcc = false;
  /// With mvcc on: when an attempt aborts without having buffered any write,
  /// the retry runs in snapshot mode automatically (callers do not have to
  /// declare read-only intent to benefit). A snapshot attempt that turns out
  /// to write is demoted/retried as a writer — see AbortReason::MvccPromote.
  bool mvcc_auto_readonly = true;

  // --- Lock-free optimistic read fast path (DESIGN.md §12) -----------------
  /// Let the Proust wrappers serve read-only operations (get/contains/peek)
  /// without acquiring the abstract lock: the base structure is read under
  /// its own internal synchronization (EBR guard / shard mutex) and the
  /// result is admitted against a per-stripe sequence word that mutators
  /// bump for the duration of their transaction (core/read_seq.hpp), or —
  /// for the lazy wrappers — against the wrapper's commit fence. Admission
  /// records the (word, observed) pair in the txn arena so every later
  /// admission, timestamp extension and the commit itself revalidate it;
  /// any instability or validation miss falls back to the locked slow path,
  /// which preserves opacity unconditionally. Off by default — the locked
  /// read path is then used exclusively and pays one never-taken branch.
  bool optimistic_reads = false;

  /// If nonzero, an atomically() call whose *eligible* attempt count reaches
  /// this threshold re-runs under the STM's exclusive commit gate: no other
  /// transaction can commit while it executes, so its reads cannot be
  /// invalidated and (absent user exceptions) it succeeds. Attempts aborted
  /// by injected chaos faults (AbortReason::ChaosInjected) are NOT eligible —
  /// fault-injection runs must not spuriously serialize the workload.
  /// Ordinary commits take the gate in shared mode with try-lock semantics —
  /// failing the try-lock aborts the ordinary transaction rather than
  /// blocking it while it holds encounter-time locks, which keeps the
  /// protocol deadlock-free. 0 disables the gate entirely (no per-commit
  /// cost).
  unsigned fallback_after = 0;

  /// Budget for one irrevocable fallback attempt (gate-hold duration). The
  /// hold time is always recorded in stats (gate_ns / gate_max_ns); when the
  /// budget is nonzero, an overrunning hold is reported by the watchdog
  /// while it is still in flight, and asserted on release in debug builds if
  /// `fallback_budget_fatal` is also set. 0 = record but never judge.
  std::chrono::nanoseconds fallback_budget{0};

  /// Make a debug build abort() when a fallback attempt exceeds
  /// `fallback_budget` (off by default so the watchdog reporting path is
  /// testable without dying).
  bool fallback_budget_fatal = false;

  // --- Inter-attempt backoff shape (common/backoff.hpp) -------------------
  /// Initial randomized spin window after the first abort.
  std::uint32_t backoff_min_spins = 32;
  /// Ceiling of the exponentially growing spin window.
  std::uint32_t backoff_max_spins = 1u << 16;
  /// Spin-vs-nap split: once the window reaches this, every pause also
  /// yields the processor.
  std::uint32_t backoff_yield_after = 4096;

  // --- Priority contention management (Karma / TimestampAging) ------------
  /// Bounded wait at a lock conflict the arbitration decided to sit out
  /// (opponent is weaker, or tie): rounds of ~16 relaxed spins, with a
  /// yield every 16th round, before giving up and aborting self.
  unsigned cm_wait_rounds = 128;
  /// Eligible (non-chaos) aborted attempts after which a transaction
  /// requests starvation recovery: it publishes itself as the STM's "elder"
  /// and committers defer to it briefly (see cm_elder_yield). Bounds the
  /// attempt count of any transaction without taking the global gate.
  unsigned cm_elder_after = 16;
  /// How long a committing transaction defers to a published elder before
  /// proceeding anyway. Bounded, so a wedged elder cannot stall commits the
  /// way the irrevocable gate can.
  std::chrono::nanoseconds cm_elder_yield = std::chrono::microseconds(250);
  /// Publish per-slot priority/diagnostic state even under the trivial
  /// policies (backoff/yield/none). Required for the progress watchdog's
  /// per-slot stall reports when no priority CM is active; the priority
  /// policies always track.
  bool cm_progress_tracking = false;

  // --- Adaptive admission control ------------------------------------------
  /// Gate new top-level transactions through a token counter whose size
  /// adapts to the sliding-window commit/abort ratio: past admission_high
  /// the token count halves (shed effective parallelism instead of
  /// livelocking), below admission_low it creeps back up. Off by default.
  bool admission_control = false;
  /// Attempts (commits + aborts) per adaptation window.
  unsigned admission_window = 512;
  /// Window abort ratio above which the token count is halved.
  double admission_high = 0.55;
  /// Window abort ratio below which the token count is incremented.
  double admission_low = 0.25;
  /// Floor of the token count (never shed below this concurrency).
  unsigned admission_min_tokens = 2;
  /// Ceiling of the token count; 0 = one per registry slot (uncapped).
  unsigned admission_max_tokens = 0;

  /// Invoked by a Watchdog (stm/watchdog.hpp) when it detects a stalled
  /// commit epoch or a gate-budget overrun. Called from the watchdog thread;
  /// must not run transactions on this Stm. Null = report to stderr.
  std::function<void(const StallReport&)> on_stall;

  /// Abstract-lock acquisition timeout used by pessimistic LAPs constructed
  /// without an explicit timeout. Timing out is the runtime's abstract-lock
  /// deadlock recovery: the transaction aborts, releases everything, backs
  /// off and retries.
  std::chrono::nanoseconds lap_timeout = std::chrono::milliseconds(2);

  /// Apply ±25% per-thread jitter to `lap_timeout` (fixed per registry
  /// slot). Symmetric deadlocks are recovered by both parties timing out;
  /// identical timeouts make them abort in lockstep and re-collide on the
  /// retry, while jittered ones let one party win the second race. LAPs
  /// constructed with an explicit timeout are exempt (tests pin exact
  /// timeout behavior through that path).
  bool lap_timeout_jitter = true;

  // --- Topology awareness (common/topology.hpp, DESIGN.md §13) -------------
  /// Pin each registry slot's thread to a CPU on its first top-level
  /// transaction against this Stm. The plan is computed once from the
  /// detected host topology; slot i binds to plan[i % plan.size()]. None
  /// (default) performs no affinity syscalls and computes no plan.
  topo::PinPolicy pinning = topo::PinPolicy::None;
  /// CPU list for PinPolicy::Explicit (ignored otherwise; empty list means
  /// "do not pin", same as None).
  std::vector<int> pin_cpus;
  /// NUMA placement of the runtime's shared tables: stamp cells become
  /// node-local per-slot blocks, MVCC version-pool headers likewise, and
  /// structures built against this Stm (orec arrays, LAP stripe tables,
  /// sequence-word tables) consult this knob for interleaved or
  /// per-node-replicated layouts. Off (default) keeps the exact
  /// first-touch-at-construction behaviour the runtime always had.
  topo::NumaPlacement numa_placement = topo::NumaPlacement::Off;

  /// Fault-injection policy woven into the runtime (stm/chaos.hpp);
  /// non-owning, must outlive every transaction of this Stm. nullptr
  /// disables injection entirely — the hot paths then cost one predictable
  /// never-taken branch per gate and allocate nothing extra.
  ChaosPolicy* chaos = nullptr;

  /// Opt-in durability: a write-ahead redo log (stm/wal.hpp, DESIGN.md §14)
  /// committing transactions publish their staged redo records to. Same
  /// contract as `chaos`: non-owning, must outlive every transaction of
  /// this Stm, nullptr (default) disables durability entirely — commits
  /// then pay one predictable never-taken branch and Txn::wal_log is a
  /// no-op (bench_wal's paired A/B pins the neutrality).
  Wal* durability = nullptr;

  /// What a *failed* log refuses (wal.hpp: a fatal storage error fails the
  /// log permanently). ReadOnlyDurability (default) refuses only commits
  /// that would produce redo records — undeclared-stream mutators keep
  /// running, merely non-durable. FailStop refuses every mutating commit
  /// (writes, replay hooks, or staged records) once the log has failed, so
  /// acked in-memory state can never outrun the durable prefix; read-only
  /// transactions still commit under both policies.
  WalFailMode wal_fail_mode = WalFailMode::ReadOnlyDurability;
};

}  // namespace proust::stm
