// Runtime policy knobs for the STM: the contention-management policy applied
// between retry attempts (§7 discusses how much CM coupling matters), and an
// optional serializing fallback that bounds retries under pathological
// contention.
#pragma once

#include <cstdint>

namespace proust::stm {

/// What a transaction does after an aborted attempt, before retrying.
enum class CmPolicy : std::uint8_t {
  /// Randomized exponential backoff (default; what the evaluation uses).
  ExponentialBackoff,
  /// Surrender the processor once; no spinning. Good on oversubscribed
  /// machines, poor when the opponent needs more than one quantum.
  Yield,
  /// Retry immediately. Maximal livelock exposure; useful as the ablation
  /// baseline for the CM bench.
  None,
};

constexpr const char* to_string(CmPolicy p) noexcept {
  switch (p) {
    case CmPolicy::ExponentialBackoff: return "backoff";
    case CmPolicy::Yield: return "yield";
    case CmPolicy::None: return "none";
  }
  return "?";
}

struct StmOptions {
  CmPolicy cm_policy = CmPolicy::ExponentialBackoff;

  /// If nonzero, an atomically() call whose attempt count reaches this
  /// threshold re-runs under the STM's exclusive commit gate: no other
  /// transaction can commit while it executes, so its reads cannot be
  /// invalidated and (absent user exceptions) it succeeds. Ordinary commits
  /// take the gate in shared mode with try-lock semantics — failing the
  /// try-lock aborts the ordinary transaction rather than blocking it while
  /// it holds encounter-time locks, which keeps the protocol deadlock-free.
  /// 0 disables the gate entirely (no per-commit cost).
  unsigned fallback_after = 0;
};

}  // namespace proust::stm
