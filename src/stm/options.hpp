// Runtime policy knobs for the STM: the contention-management policy applied
// between retry attempts (§7 discusses how much CM coupling matters), the
// global-version-clock scheme used by the commit path, and an optional
// serializing fallback that bounds retries under pathological contention.
#pragma once

#include <chrono>
#include <cstdint>

#include "stm/fwd.hpp"

namespace proust::stm {

/// What a transaction does after an aborted attempt, before retrying.
enum class CmPolicy : std::uint8_t {
  /// Randomized exponential backoff (default; what the evaluation uses).
  ExponentialBackoff,
  /// Surrender the processor once; no spinning. Good on oversubscribed
  /// machines, poor when the opponent needs more than one quantum.
  Yield,
  /// Retry immediately. Maximal livelock exposure; useful as the ablation
  /// baseline for the CM bench.
  None,
};

constexpr const char* to_string(CmPolicy p) noexcept {
  switch (p) {
    case CmPolicy::ExponentialBackoff: return "backoff";
    case CmPolicy::Yield: return "yield";
    case CmPolicy::None: return "none";
  }
  return "?";
}

/// How a writing commit obtains its write version `wv` from the STM's global
/// clock — a design-space axis of its own (TL2's GV1/GV4/GV5 family). The
/// clock word is the one cache line every writing commit shares, so the
/// scheme decides how commit throughput scales with thread count.
///
/// The `rv + 1 == wv` validation-skip fast path is sound ONLY under
/// IncOnCommit: there every committer increments the clock *after* acquiring
/// its write locks, so `wv == rv + 1` proves no writer overlapped this
/// transaction's reads. Under PassOnFailure two commits may share one `wv`
/// (the CAS loser adopts the winner's value mid-flight), and under LazyBump
/// the clock does not tick per commit at all, so both schemes always
/// revalidate the read set (see DESIGN.md §7).
enum class ClockScheme : std::uint8_t {
  /// GV1: every writing commit does one `fetch_add` on the shared clock.
  /// Cheapest bookkeeping, keeps the validation-skip fast path, but every
  /// commit ping-pongs the clock cache line.
  IncOnCommit,
  /// GV4: CAS the clock from its observed value `g` to `g + 1`; on CAS
  /// failure reuse the winner's published value as this commit's `wv`
  /// instead of retrying. Contended commits stop fighting over the clock
  /// line — at most one RMW succeeds per tick, everyone else piggybacks.
  PassOnFailure,
  /// GV5: commit at `clock_now() + 1` without writing the clock at all; a
  /// reader that meets a too-new version bumps the clock up to it before
  /// retrying (Stm::clock_catch_up), which bounds the extra aborts this
  /// scheme trades for a write-free commit.
  LazyBump,
};

constexpr const char* to_string(ClockScheme s) noexcept {
  switch (s) {
    case ClockScheme::IncOnCommit: return "IncOnCommit";
    case ClockScheme::PassOnFailure: return "PassOnFailure";
    case ClockScheme::LazyBump: return "LazyBump";
  }
  return "?";
}

struct StmOptions {
  CmPolicy cm_policy = CmPolicy::ExponentialBackoff;

  /// Global-clock scheme used by writing commits (see ClockScheme).
  ClockScheme clock_scheme = ClockScheme::IncOnCommit;

  /// If nonzero, an atomically() call whose attempt count reaches this
  /// threshold re-runs under the STM's exclusive commit gate: no other
  /// transaction can commit while it executes, so its reads cannot be
  /// invalidated and (absent user exceptions) it succeeds. Ordinary commits
  /// take the gate in shared mode with try-lock semantics — failing the
  /// try-lock aborts the ordinary transaction rather than blocking it while
  /// it holds encounter-time locks, which keeps the protocol deadlock-free.
  /// 0 disables the gate entirely (no per-commit cost).
  unsigned fallback_after = 0;

  /// Abstract-lock acquisition timeout used by pessimistic LAPs constructed
  /// without an explicit timeout. Timing out is the runtime's abstract-lock
  /// deadlock recovery: the transaction aborts, releases everything, backs
  /// off and retries.
  std::chrono::nanoseconds lap_timeout = std::chrono::milliseconds(2);

  /// Apply ±25% per-thread jitter to `lap_timeout` (fixed per registry
  /// slot). Symmetric deadlocks are recovered by both parties timing out;
  /// identical timeouts make them abort in lockstep and re-collide on the
  /// retry, while jittered ones let one party win the second race. LAPs
  /// constructed with an explicit timeout are exempt (tests pin exact
  /// timeout behavior through that path).
  bool lap_timeout_jitter = true;

  /// Fault-injection policy woven into the runtime (stm/chaos.hpp);
  /// non-owning, must outlive every transaction of this Stm. nullptr
  /// disables injection entirely — the hot paths then cost one predictable
  /// never-taken branch per gate and allocate nothing extra.
  ChaosPolicy* chaos = nullptr;
};

}  // namespace proust::stm
