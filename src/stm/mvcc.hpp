// Multi-version state for snapshot reads (StmOptions::mvcc, DESIGN.md §11).
//
// Every writing commit pushes the value it is about to overwrite — together
// with that value's version stamp — onto the owning Var's version chain
// before the in-place overwrite, while still holding the var's orec lock.
// Chains are newest-first and strictly decreasing in version, so a snapshot
// reader with start timestamp rv that finds the in-place version too new
// walks the chain to the first entry with version <= rv; the push-before-
// overwrite discipline guarantees that entry exists for any rv pinned while
// the overwritten value was still current.
//
// Three pieces live here:
//  - VersionNode: one retained value (version stamp + trailing byte buffer),
//    fronted by an ebr::Retired hook so retiring allocates nothing.
//  - VersionPool: per-registry-slot free lists recycling nodes, so steady-
//    state writer commits never touch the heap (stm_alloc_test pins this).
//  - MvccState: the per-Stm aggregate — pool, EBR domain for chain
//    truncation, and the per-slot snapshot announcements whose minimum is
//    the truncation horizon (no chain entry a live reader could still need
//    is ever unlinked).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "common/ebr.hpp"
#include "common/topology.hpp"
#include "stm/fwd.hpp"
#include "stm/thread_registry.hpp"

namespace proust::stm {

/// One retained historical value of a Var. Allocated as a single block of
/// `sizeof(VersionNode) + cap` bytes; the value bytes trail the header.
/// `next` is atomic because snapshot readers traverse the chain while the
/// lock-holding writer truncates it (truncation only ever *unlinks suffixes*,
/// so a reader that already holds a node can keep following `next` — it
/// either sees the old suffix, still protected by the reader's EBR pin, or
/// null).
struct VersionNode {
  ebr::Retired hook;  // first, so Retired* == VersionNode* modulo layout
  std::atomic<VersionNode*> next{nullptr};
  Version version = 0;
  std::uint32_t cap = 0;   // capacity of the trailing buffer
  std::uint32_t size = 0;  // bytes actually retained

  void* bytes() noexcept { return this + 1; }
  const void* bytes() const noexcept { return this + 1; }

  static VersionNode* from_hook(ebr::Retired* r) noexcept {
    return reinterpret_cast<VersionNode*>(
        reinterpret_cast<char*>(r) - offsetof(VersionNode, hook));
  }
};

/// Per-slot free lists of VersionNodes. acquire/release are called only from
/// the owning registry slot (writers recycle on their own slot; EBR reclaim
/// callbacks run on the draining slot and push there), so the lists need no
/// synchronization — the alignas keeps neighbouring slots off each other's
/// lines anyway.
class VersionPool {
 public:
  explicit VersionPool(unsigned max_slots, topo::NumaPlacement placement =
                                               topo::NumaPlacement::Off)
      : max_slots_(max_slots),
        node_local_(placement != topo::NumaPlacement::Off) {
    if (node_local_) {
      // Per-slot headers allocated lazily by the owning slot, so the first
      // touch — and with libnuma the explicit placement — happens on the
      // slot's node instead of wherever the Stm was constructed.
      lazy_ = new std::atomic<Slot*>[max_slots] {};
    } else {
      slots_ = new Slot[max_slots];
    }
  }
  ~VersionPool() {
    for (unsigned i = 0; i < max_slots_; ++i) {
      Slot* s = node_local_ ? lazy_[i].load(std::memory_order_acquire)
                            : &slots_[i];
      if (s == nullptr) continue;
      VersionNode* n = s->head;
      while (n != nullptr) {
        VersionNode* next = n->next.load(std::memory_order_relaxed);
        ::operator delete(n);
        n = next;
      }
      if (node_local_) {
        s->~Slot();
        topo::free_onnode(s, sizeof(Slot));
      }
    }
    delete[] slots_;
    delete[] lazy_;
  }
  VersionPool(const VersionPool&) = delete;
  VersionPool& operator=(const VersionPool&) = delete;

  /// Pop a node with capacity >= size, or allocate one (warm-up only, in
  /// steady state the free list serves every request). Undersized pool nodes
  /// are replaced rather than kept: chains of one Stm hold homogeneous sizes
  /// per var, so resizing converges immediately.
  VersionNode* acquire(unsigned slot, std::uint32_t size) {
    assert(slot < max_slots_);
    Slot& s = slot_ref(slot);
    VersionNode* n = s.head;
    if (n != nullptr && n->cap >= size) {
      s.head = n->next.load(std::memory_order_relaxed);
      --s.count;
      n->next.store(nullptr, std::memory_order_relaxed);
      return n;
    }
    if (n != nullptr) {
      s.head = n->next.load(std::memory_order_relaxed);
      --s.count;
      ::operator delete(n);
    }
    void* raw = ::operator new(sizeof(VersionNode) + size);
    VersionNode* fresh = new (raw) VersionNode{};
    fresh->cap = size;
    return fresh;
  }

  void release(unsigned slot, VersionNode* n) noexcept {
    assert(slot < max_slots_);
    Slot& s = slot_ref(slot);
    if (s.count >= kMaxFree) {
      ::operator delete(n);
      return;
    }
    n->next.store(s.head, std::memory_order_relaxed);
    s.head = n;
    ++s.count;
  }

 private:
  /// Cap per-slot hoarding; beyond this, nodes go back to the heap. Large
  /// enough for any steady-state chain churn a single slot generates between
  /// EBR drains (kAdvanceEvery nodes per bucket, 4 buckets, plus slack).
  static constexpr std::size_t kMaxFree = 1024;

  struct alignas(kCacheLine) Slot {
    VersionNode* head = nullptr;
    std::size_t count = 0;
  };

  /// acquire/release run only on the owning slot, so lazy allocation races
  /// nothing; the acquire/release fences cover the registry-mutex slot
  /// handoff to a successor thread.
  Slot& slot_ref(unsigned slot) {
    if (!node_local_) return slots_[slot];
    Slot* p = lazy_[slot].load(std::memory_order_acquire);
    if (p == nullptr) [[unlikely]] {
      p = new (topo::alloc_onnode(sizeof(Slot), -1)) Slot{};
      lazy_[slot].store(p, std::memory_order_release);
    }
    return *p;
  }

  Slot* slots_ = nullptr;
  std::atomic<Slot*>* lazy_ = nullptr;
  unsigned max_slots_;
  bool node_local_;
};

/// Per-Stm multi-version state. Declaration order matters: the pool must
/// outlive the EBR domain, whose destructor drains limbo nodes back into it.
class MvccState {
 public:
  explicit MvccState(unsigned max_slots, topo::NumaPlacement placement =
                                             topo::NumaPlacement::Off)
      : pool_(max_slots, placement), ebr_(max_slots), max_slots_(max_slots) {
    announce_ = new Cell[max_slots];
  }
  ~MvccState() { delete[] announce_; }
  MvccState(const MvccState&) = delete;
  MvccState& operator=(const MvccState&) = delete;

  VersionPool& pool() noexcept { return pool_; }
  ebr::EbrDomain& ebr() noexcept { return ebr_; }

  /// Snapshot-reader begin: announce a timestamp no greater than the final
  /// rv *before* choosing rv, so a concurrent truncating writer either sees
  /// the announcement (and keeps every version >= it) or, having missed it,
  /// computed its horizon from a clock value c_w with rv >= c_w (all four
  /// loads/stores are seq_cst: if the writer's scan misses this cell, the
  /// scan precedes the announce store in the total order, hence the writer's
  /// clock load precedes this rv load, hence rv >= c_w >= horizon). Also
  /// pins EBR so truncated suffixes the reader may still traverse are not
  /// freed. Returns the snapshot timestamp rv.
  Version reader_begin(unsigned slot, const std::atomic<Version>& clock) {
    assert(slot < max_slots_);
    ebr_.enter(slot);
    const Version a0 = clock.load(std::memory_order_seq_cst);
    announce_[slot].v.store(a0, std::memory_order_seq_cst);
    return clock.load(std::memory_order_seq_cst);
  }

  void reader_end(unsigned slot) noexcept {
    announce_[slot].v.store(kNoSnapshot, std::memory_order_release);
    ebr_.exit(slot);
  }

  /// Truncation horizon: the oldest snapshot any active reader may hold,
  /// bounded above by the current clock (a future reader pins a timestamp
  /// >= the clock the writer saw; the announce protocol covers in-flight
  /// ones). A writer may unlink every chain entry strictly older than the
  /// newest entry with version <= horizon (that entry itself still serves
  /// readers pinned exactly at the horizon).
  Version horizon(const std::atomic<Version>& clock) const noexcept {
    Version h = clock.load(std::memory_order_seq_cst);
    const unsigned hw = ThreadRegistry::high_water();
    for (unsigned i = 0; i < hw && i < max_slots_; ++i) {
      const Version a = announce_[i].v.load(std::memory_order_seq_cst);
      if (a < h) h = a;
    }
    return h;
  }

  /// Retire a chain suffix (already unlinked, caller pinned). Nodes recycle
  /// into this state's pool on whatever slot drains them. Returns the number
  /// of entries retired.
  std::size_t retire_chain(unsigned slot, VersionNode* head) noexcept {
    std::size_t n = 0;
    while (head != nullptr) {
      VersionNode* next = head->next.load(std::memory_order_relaxed);
      ebr_.retire(slot, &head->hook, &MvccState::reclaim_node, this);
      head = next;
      ++n;
    }
    return n;
  }

  /// Drop every node of a chain straight into the pool — destruction-time
  /// path (~VarBase), when no readers can exist.
  void recycle_chain_unsafe(unsigned slot, VersionNode* head) noexcept {
    while (head != nullptr) {
      VersionNode* next = head->next.load(std::memory_order_relaxed);
      pool_.release(slot, head);
      head = next;
    }
  }

  static constexpr Version kNoSnapshot = ~Version{0};

 private:
  static void reclaim_node(ebr::Retired* r, void* ctx) {
    auto* self = static_cast<MvccState*>(ctx);
    self->pool_.release(ThreadRegistry::slot(), VersionNode::from_hook(r));
  }

  struct alignas(kCacheLine) Cell {
    std::atomic<Version> v{kNoSnapshot};
  };

  VersionPool pool_;
  ebr::EbrDomain ebr_;
  Cell* announce_;
  unsigned max_slots_;
};

}  // namespace proust::stm
