#include "stm/contention.hpp"

#include <chrono>
#include <thread>

namespace proust::stm {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Backoff / Yield / None: the trivial inter-attempt policies. They never
/// arbitrate (requester-aborts, the pre-CM behavior) and track per-slot
/// state only when the watchdog asks for it (cm_progress_tracking).
class TrivialCm final : public ContentionManager {
 public:
  TrivialCm(CmState& state, CmPolicy policy, bool tracking) noexcept
      : ContentionManager(state, tracking), policy_(policy) {}

  const char* name() const noexcept override { return to_string(policy_); }

  void pause(Backoff& backoff) override {
    switch (policy_) {
      case CmPolicy::ExponentialBackoff: backoff.pause(); break;
      case CmPolicy::Yield: std::this_thread::yield(); break;
      default: break;  // None: retry immediately
    }
  }

 private:
  CmPolicy policy_;
};

/// Work-weighted priority: karma is the reads + writes a call performed
/// across its aborted attempts, so the side that would waste more work by
/// aborting wins the conflict. The mapping keeps `priority` strictly below
/// kCmIdlePriority so an active zero-karma transaction is distinguishable
/// from an idle slot.
class KarmaCm final : public ContentionManager {
 public:
  explicit KarmaCm(CmState& state) noexcept
      : ContentionManager(state, /*tracking=*/true) {}

  const char* name() const noexcept override { return "karma"; }

  std::uint64_t priority(std::uint64_t /*birth*/,
                         std::uint64_t karma) const noexcept override {
    return karma >= kCmIdlePriority - 1 ? 0 : kCmIdlePriority - 1 - karma;
  }

  CmDecision arbitrate(std::uint64_t self_pri,
                       std::uint64_t opp_pri) const noexcept override {
    if (self_pri < opp_pri) return CmDecision::kAbortOther;
    if (self_pri > opp_pri) return CmDecision::kAbortSelf;
    return CmDecision::kWait;  // equal karma: bounded wait, then yield
  }

  void pause(Backoff& backoff) override { backoff.pause(); }
};

/// Oldest-transaction-wins: priority is the call's birth stamp, which
/// totally orders every pair of calls — a starving transaction eventually
/// outranks all newcomers, and two distinct calls can never tie.
class TimestampAgingCm final : public ContentionManager {
 public:
  explicit TimestampAgingCm(CmState& state) noexcept
      : ContentionManager(state, /*tracking=*/true) {}

  const char* name() const noexcept override { return "aging"; }

  std::uint64_t priority(std::uint64_t birth,
                         std::uint64_t /*karma*/) const noexcept override {
    return birth;
  }

  CmDecision arbitrate(std::uint64_t self_pri,
                       std::uint64_t opp_pri) const noexcept override {
    if (self_pri < opp_pri) return CmDecision::kAbortOther;
    if (self_pri > opp_pri) return CmDecision::kAbortSelf;
    return CmDecision::kWait;  // only vs. boosted (pri 0) peers
  }

  void pause(Backoff& backoff) override { backoff.pause(); }
};

}  // namespace

ContentionManager::~ContentionManager() { remove_lock_arbiter(); }

std::uint64_t ContentionManager::priority(std::uint64_t /*birth*/,
                                          std::uint64_t /*karma*/)
    const noexcept {
  // Non-priority policies publish the weakest active priority: they never
  // doom anyone, and everyone outranks them.
  return kCmIdlePriority - 1;
}

CmDecision ContentionManager::arbitrate(std::uint64_t /*self_pri*/,
                                        std::uint64_t /*opp_pri*/)
    const noexcept {
  return CmDecision::kAbortSelf;  // classic requester-aborts
}

sync::CmWaitVerdict ContentionManager::on_contended_park(
    const void* /*lock*/, bool /*write*/, unsigned round) noexcept {
  const unsigned elder = state_->elder();
  if (elder == 0) return sync::CmWaitVerdict::kKeepWaiting;
  if (elder == ThreadRegistry::slot() + 1) {
    return sync::CmWaitVerdict::kKeepWaiting;  // the elder itself never sheds
  }
  // A starving elder is published: shed this wait queue after one park so
  // the locks the elder needs drain instead of growing new waiters. The
  // give-up surfaces as an acquisition timeout — abort, release, retry —
  // which is exactly the recovery the elder window needs from everyone else.
  return round >= 1 ? sync::CmWaitVerdict::kGiveUp
                    : sync::CmWaitVerdict::kKeepWaiting;
}

std::unique_ptr<ContentionManager> make_contention_manager(
    const StmOptions& options, CmState& state) {
  switch (options.cm_policy) {
    case CmPolicy::Karma:
      return std::make_unique<KarmaCm>(state);
    case CmPolicy::TimestampAging:
      return std::make_unique<TimestampAgingCm>(state);
    default:
      return std::make_unique<TrivialCm>(state, options.cm_policy,
                                         options.cm_progress_tracking);
  }
}

std::uint64_t AdmissionController::admit() noexcept {
  if (!enabled_) return 0;
  std::uint32_t a = active_.load(std::memory_order_relaxed);
  while (a < limit_.load(std::memory_order_relaxed)) {
    if (active_.compare_exchange_weak(a, a + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return 0;
    }
  }
  // Throttled: wait for a token off to the side. Nothing transactional is
  // held here (admission precedes the first attempt), so sleeping is safe;
  // short naps rather than spinning so the admitted transactions — the ones
  // we are shedding load for — get the cycles.
  const std::uint64_t t0 = now_ns();
  unsigned spins = 0;
  for (;;) {
    a = active_.load(std::memory_order_relaxed);
    if (a < limit_.load(std::memory_order_relaxed) &&
        active_.compare_exchange_weak(a, a + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return now_ns() - t0;
    }
    if (++spins < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void AdmissionController::note_outcome(bool committed) noexcept {
  if (!enabled_) return;
  (committed ? window_commits_ : window_aborts_)
      .fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seen =
      window_commits_.load(std::memory_order_relaxed) +
      window_aborts_.load(std::memory_order_relaxed);
  if (seen < window_) return;
  if (adapting_.exchange(true, std::memory_order_acq_rel)) return;
  // One adapter at a time; the exchanges race with concurrent counting, so
  // a boundary is approximate — fine, the window is a smoothing device.
  const std::uint64_t commits =
      window_commits_.exchange(0, std::memory_order_acq_rel);
  const std::uint64_t aborts =
      window_aborts_.exchange(0, std::memory_order_acq_rel);
  const std::uint64_t total = commits + aborts;
  if (total > 0) {
    const double ratio =
        static_cast<double>(aborts) / static_cast<double>(total);
    std::uint32_t lim = limit_.load(std::memory_order_relaxed);
    if (ratio > high_) {
      lim = lim / 2 < min_tokens_ ? min_tokens_ : lim / 2;  // MD
    } else if (ratio < low_ && lim < max_tokens_) {
      lim += 1;  // AI
    }
    limit_.store(lim, std::memory_order_relaxed);
  }
  adapting_.store(false, std::memory_order_release);
}

}  // namespace proust::stm
