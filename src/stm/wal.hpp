// Opt-in durability: a per-Stm write-ahead redo log with group commit
// (DESIGN.md §14) and checkpoint/compaction (DESIGN.md §15). The Wal hangs
// off `StmOptions::durability` exactly like the chaos policy hangs off
// `StmOptions::chaos`: a non-owning pointer, nullptr by default, and every
// hot-path touch is one predictable never-taken branch — the paired A/B run
// in bench_wal pins the neutrality.
//
// Model. Transactions stage *logical redo records* while they run: wrapper
// layers log one record per structure operation (put/remove — the same op
// shape as the replay logs in core/replay_log.hpp), and raw `Var`s
// registered with `register_var` are serialized automatically from the
// write set at commit. Staged bytes live in the per-thread TxnArena and die
// with an aborted attempt, so nothing an abort produced can ever reach the
// log. At the commit point — inside the commit-fence bracket, while every
// write lock is still held — the transaction publishes its staged buffer
// and is assigned a monotone *epoch*; conflicting transactions hold
// conflicting locks across publish, so epoch order refines conflict order
// and replaying epochs in order reproduces the committed history.
//
// A background group committer drains published units, seals them into
// checksummed batches (CRC32 per record payload, sealed-length + CRC32
// header per batch), appends them to segment files and fsyncs once per
// batch; `fsync_every_n` / `fsync_interval_us` bound how many records and
// how much time one fsync may cover. `WalDurability::Relaxed` acks at
// publish ("ack on append"); `Strict` blocks the committing thread on the
// durable epoch ("ack on fsync") via a futex eventcount.
//
// Failure handling. Every storage syscall on the write path goes through an
// injectable `common::Fs` (so the fault suites can feed it EIO, ENOSPC and
// short writes at the syscall gate) and is classified by a per-errno
// policy: transient errors (EAGAIN/ENOBUFS/ENOMEM by default, overridable
// via `WalOptions::error_policy`) get a bounded retry with exponential
// backoff; everything else — and *always* fsync, whatever the policy says —
// is fatal for the log ("fsyncgate": after a failed fsync the kernel may
// have dropped the dirty pages, so retrying the fsync can report durable
// data that never reached the disk). A fatal error marks the log failed,
// surfaces a WalError through `on_error` (stderr by default), wakes every
// strict waiter (they throw WalUnavailable), and makes every later logging
// commit refuse up front; `StmOptions::wal_fail_mode` chooses whether
// non-logging writers keep running (read-only-durability degradation, the
// default) or every mutating commit is refused too (fail-stop).
//
// Recovery (`Wal::recover`) loads the newest CRC-valid checkpoint (written
// by stm/checkpoint.hpp; older retained checkpoints are the fallback for a
// bit-rotted one), streams its records (state *at* the covering epoch),
// then scans the segment files in order, verifies every checksum, skips
// records the checkpoint subsumes, truncates the torn tail a crash mid-
// append leaves behind, and streams the surviving tail records in epoch
// order — so recovery cost is bounded by live state size plus the
// unretired tail, not history length. `replay_into` does the same against
// *this* instance's registered vars for warm restarts.
//
// The crash-matrix suites (tests/wal_crash_test.cpp and
// tests/wal_checkpoint_crash_test.cpp) drive the WAL and checkpoint chaos
// gates to _exit the process at each of them — under injected storage
// errors too — and prove recovery always yields a prefix of the committed
// history with no acked-strict commit lost and no aborted transaction
// resurrected.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/chaos_fs.hpp"
#include "common/fd.hpp"
#include "stm/commit_fence.hpp"
#include "stm/fwd.hpp"
#include "sync/eventcount.hpp"

namespace proust::stm {

/// When `atomically` acks a logging transaction to its caller.
enum class WalDurability : std::uint8_t {
  Relaxed,  // ack once the redo records are published to the group committer
  Strict,   // ack only once the records' batch has been fsync'd
};

constexpr const char* to_string(WalDurability d) noexcept {
  switch (d) {
    case WalDurability::Relaxed: return "relaxed";
    case WalDurability::Strict: return "strict";
  }
  return "?";
}

/// How one failed write/open/rename errno is handled. fsync never consults
/// this — a failed fsync is always fatal for the segment (see header
/// comment).
enum class WalErrorPolicy : std::uint8_t {
  Fatal,  // fail-stop the log immediately
  Retry,  // bounded retry with exponential backoff, then fail-stop
};

/// One I/O failure, delivered to WalOptions::on_error from the committer
/// thread (or from the failing strict waiter). After the first of these the
/// log is failed for good: `Wal::failed()` stays true and logging commits
/// throw WalUnavailable.
struct WalError {
  const char* op;    // "write", "fsync", "rename", "open", "checkpoint"
  int err;           // errno at the failure
  std::string path;  // segment (or directory) involved
};

/// Thrown by logging commits once the log is failed, and by strict waiters
/// whose batch can no longer become durable.
struct WalUnavailable : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Exit code of a chaos-injected WAL/checkpoint crash (ChaosAction::Crash
/// at a WAL gate): the crash-matrix parent uses it to tell an injected kill
/// from an ordinary child failure.
inline constexpr int kWalCrashExitCode = 86;

struct WalOptions {
  /// Segment directory; created (one level) if missing.
  std::string dir;
  /// Rotate to a fresh segment once the current one exceeds this.
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// Group-commit batching: seal + fsync once this many records are
  /// pending, or once the oldest pending record is `fsync_interval_us` old,
  /// whichever comes first.
  unsigned fsync_every_n = 32;
  std::chrono::microseconds fsync_interval_us{200};
  WalDurability durability = WalDurability::Relaxed;
  /// Failure sink (committer thread). Null = report to stderr.
  std::function<void(const WalError&)> on_error;
  /// Fault injection at the WAL gates (crash/delay); non-owning, may be the
  /// same policy the Stm uses. The committer thread draws from its own
  /// registry slot's stream, so decisions stay deterministic per seed.
  ChaosPolicy* chaos = nullptr;
  /// Deterministic I/O-failure injection for the fail-stop tests: called
  /// before each write/fsync/rename with the matching gate; a nonzero
  /// return is treated as that errno failing the operation.
  std::function<int(ChaosPoint)> io_failure;
  /// Write-path filesystem; null = real syscalls. The fault suites plug a
  /// common::ChaosFs here. (Recovery reads bypass this — a recovery scan
  /// already treats every malformed byte as a torn tail.)
  common::Fs* fs = nullptr;
  /// Per-errno policy for failed write/open/rename calls. Null = default
  /// table: EAGAIN/ENOBUFS/ENOMEM retry, everything else (EIO, ENOSPC, …)
  /// fatal. fsync failures NEVER consult this (always fatal).
  std::function<WalErrorPolicy(int)> error_policy;
  /// Bounded retry for WalErrorPolicy::Retry: at most `retry_limit`
  /// retries per operation, sleeping retry_backoff * 2^attempt between.
  unsigned retry_limit = 4;
  std::chrono::microseconds retry_backoff{100};
};

struct WalStats {
  std::uint64_t records = 0;     // redo records written to segments
  std::uint64_t bytes = 0;       // payload bytes written
  std::uint64_t batches = 0;     // sealed batches appended
  std::uint64_t fsyncs = 0;      // successful fsyncs
  std::uint64_t rotations = 0;   // segment rotations
  std::uint64_t errors = 0;      // I/O failures observed (fail-stop after 1)
  std::uint64_t retries = 0;     // transient-error retries that were taken
  std::uint64_t segments_retired = 0;  // segments removed by checkpointing
  std::uint64_t published_epoch = 0;   // newest epoch handed out
  std::uint64_t durable_epoch = 0;     // newest fsync-covered epoch
};

/// One recovered redo record, streamed to the recovery handler in epoch
/// order. `data` borrows from the recovery scan buffer — copy to keep.
/// Checkpoint records (`from_checkpoint`) carry the covering epoch and hold
/// *state at* that epoch (absolute values), not an operation to re-apply —
/// handlers replaying delta streams must load them, not fold them.
struct WalRecordView {
  std::uint64_t epoch;
  std::uint32_t stream;
  const std::uint8_t* data;
  std::uint32_t size;
  bool from_checkpoint = false;
};

/// Per-segment summary from a recovery scan (epochs 0/0 for a segment with
/// no complete batch). Feeds the retirement bookkeeping and wal_inspect.
struct WalSegmentDetail {
  std::uint32_t index = 0;
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
};

struct WalRecoveryInfo {
  std::uint64_t records = 0;      // tail records delivered (epoch > ckpt)
  std::uint64_t last_epoch = 0;   // 0 = empty log
  std::uint32_t segments = 0;     // valid segments scanned
  bool torn_tail = false;         // a checksum/bounds miss truncated the log
  std::uint64_t truncated_bytes = 0;
  std::uint32_t skipped_tmp = 0;  // half-rotated .tmp files discarded
  // Checkpoint-anchored recovery (DESIGN.md §15):
  std::uint64_t checkpoint_epoch = 0;    // covering epoch loaded (0 = none)
  std::uint64_t checkpoint_records = 0;  // records streamed from it
  std::uint64_t skipped_records = 0;     // valid tail records it subsumed
  std::uint32_t corrupt_checkpoints = 0;  // CRC-invalid ones skipped over
  /// Streams seen across checkpoint + validated tail (bit min(stream, 63);
  /// kVarStream excluded). The checkpointer refuses to subsume streams it
  /// has no snapshotter for.
  std::uint64_t stream_mask = 0;
  std::vector<WalSegmentDetail> segment_details;
};

class Wal {
 public:
  /// Stream id reserved for auto-serialized Var writes (register_var).
  /// Wrapper layers must pick ids below this.
  static constexpr std::uint32_t kVarStream = 0xFFFFFFFFu;

  /// Opens (resuming after any existing valid segments — the torn tail, if
  /// any, is truncated first) and starts the group committer thread.
  explicit Wal(WalOptions opts);
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  /// Drains and fsyncs everything published, then joins the committer.
  ~Wal();

  const WalOptions& options() const noexcept { return opts_; }
  common::Fs& fs() const noexcept { return *fs_; }

  /// Append one staged record to a transaction's staging buffer
  /// ([stream u32][len u32][payload]). Pure byte bookkeeping — no lock, no
  /// epoch; Txn::wal_log calls this into the arena buffer.
  static void stage_record(std::vector<std::uint8_t>& buf, std::uint32_t stream,
                           const void* data, std::size_t n);
  /// As above for an auto-serialized Var write: payload is [var id u64]
  /// followed by the value bytes, under stream kVarStream.
  static void stage_var_record(std::vector<std::uint8_t>& buf,
                               std::uint64_t var_id, const void* value,
                               std::size_t n);
  /// Decode a kVarStream record produced by stage_var_record. Returns false
  /// (and touches nothing) for records of any other stream or a short
  /// payload.
  static bool decode_var_record(const WalRecordView& r, std::uint64_t& var_id,
                                const std::uint8_t*& value,
                                std::uint32_t& size) noexcept;

  /// Publish one committed transaction's staged records (the arena buffer
  /// built by stage_record) and assign its epoch. Called by Txn at the
  /// commit point with every write lock held — that lock order is what
  /// makes epoch order a linearization of conflicting commits. Never
  /// blocks on I/O.
  std::uint64_t publish(const std::uint8_t* staged, std::size_t bytes,
                        std::uint32_t records);

  /// Block until `epoch` is fsync-covered (strict durability ack). Throws
  /// WalUnavailable if the log failed before covering it.
  void wait_durable(std::uint64_t epoch);

  /// Publish-side barrier: wait until everything published so far is
  /// durable. Throws WalUnavailable on a failed log.
  void flush();

  bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }
  std::uint64_t durable_epoch() const noexcept {
    return durable_epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t published_epoch() const noexcept {
    return published_epoch_.load(std::memory_order_acquire);
  }

  WalStats stats() const noexcept;

  // --- Raw-var redo logging ----------------------------------------------
  /// Register a Var for automatic redo logging: every committing write to
  /// it is serialized (under kVarStream, keyed by `id`) with no wrapper
  /// code. Ids must be unique per Wal and stable across restarts — they are
  /// how recovery finds the var again. Register during setup, before
  /// transactions run; the directory is read locklessly on the commit path.
  void register_var(std::uint64_t id, const VarBase& var);
  bool has_vars() const noexcept { return !var_ids_.empty(); }
  /// Commit-path lookup: the registered id of `var`, or false.
  bool var_id(const VarBase* var, std::uint64_t& id) const noexcept;
  /// Setup-time directory of registered vars (the checkpointer iterates it
  /// to snapshot live state).
  const std::unordered_map<const VarBase*, std::uint64_t>& registered_vars()
      const noexcept {
    return var_ids_;
  }

  // --- Checkpoint support (stm/checkpoint.hpp) ---------------------------
  /// Fence bracketing every commit that may publish to this log, across
  /// [wv generation .. write-back complete]. The checkpointer's consistent
  /// cut requires it quiescent before and unchanged after the snapshot, so
  /// a quiescent observation pairs the snapshot values with
  /// published_epoch() exactly.
  CommitFence& checkpoint_fence() noexcept { return ckpt_fence_; }
  /// Mask bit for one wrapper stream id (streams >= 63 share bit 63, so
  /// checkpoint coverage bookkeeping needs wrapper streams below 63).
  static constexpr std::uint64_t stream_bit(std::uint32_t stream) noexcept {
    return 1ull << (stream < 63 ? stream : 63);
  }
  /// Non-kVarStream streams this log has ever carried (stream_bit each),
  /// merged across on-disk history and this run's published records.
  std::uint64_t observed_stream_mask() const noexcept {
    return stream_mask_.load(std::memory_order_relaxed);
  }
  /// Remove sealed segments wholly subsumed by a durable checkpoint at
  /// `covered_epoch` (segment last_epoch <= covered_epoch; the live segment
  /// is never touched). Returns the number unlinked. Called by the
  /// checkpointer after its rename+dir-fsync.
  std::uint32_t retire_segments(std::uint64_t covered_epoch);

  /// Scan `dir`: load the newest CRC-valid checkpoint (falling back over
  /// corrupt ones), stream its records (from_checkpoint=true), then
  /// validate every segment batch/record checksum, truncate the torn tail
  /// (and drop half-rotated .tmp files), skip tail records the checkpoint
  /// subsumes, and stream the surviving records to `handler` in epoch
  /// order. Safe on an empty or missing directory (returns an empty info).
  /// Static — runs against a directory no live Wal owns.
  static WalRecoveryInfo recover(
      const std::string& dir,
      const std::function<void(const WalRecordView&)>& handler);

  /// Warm restart: recover this instance's directory *into its live
  /// registered vars* — kVarStream records whose id is registered here are
  /// applied via VarBase::unsafe_restore; everything else streams to
  /// `handler` (wrapper streams). Quiescent only: call after construction
  /// and registration, before transactions run.
  WalRecoveryInfo replay_into(
      const std::function<void(const WalRecordView&)>& handler = {});

 private:
  struct Batch {
    std::vector<std::uint8_t> units;  // staged units drained from pending_
    std::uint32_t records = 0;
    std::uint64_t first_epoch = 0;
    std::uint64_t last_epoch = 0;
  };

  void committer_main();
  void write_batch(Batch& b);
  void open_fresh_segment();           // ctor path (no chaos, throws)
  bool rotate_segment();               // committer path (fail-stop on error)
  void fail(const char* op, int err, const std::string& path);
  /// Write all of [data, data+n) through fs_, absorbing EINTR and short
  /// writes, retrying transient errnos per the policy (bounded), and
  /// fail-stopping on anything else. False once the log failed.
  bool write_all(int fd, const void* data, std::size_t n,
                 const std::string& path);
  WalErrorPolicy classify(int err) const noexcept;
  void retry_backoff_sleep(unsigned attempt) noexcept;
  /// Draw at a WAL gate: Crash returns true (caller performs the kill so
  /// WalAppend can tear the write first), Delay/Abort/Timeout coerce to an
  /// injected delay, None is free.
  bool chaos_crash(ChaosPoint p) noexcept;
  int injected_io_error(ChaosPoint p) noexcept {
    return opts_.io_failure ? opts_.io_failure(p) : 0;
  }

  WalOptions opts_;
  common::Fs* fs_ = nullptr;
  common::UniqueFd fd_;      // current segment
  common::UniqueFd dir_fd_;  // directory handle, fsync'd after create/rename
  std::uint32_t seg_index_ = 0;
  std::size_t seg_bytes_ = 0;  // bytes appended to the current segment
  std::string seg_path_;
  // Current segment's epoch coverage (committer thread only); snapshotted
  // into sealed_ at rotation so retirement knows what each file holds.
  std::uint64_t seg_first_epoch_ = 0;
  std::uint64_t seg_last_epoch_ = 0;

  std::mutex mu_;  // guards pending_* and epoch handout
  std::vector<std::uint8_t> pending_;
  std::uint32_t pending_records_ = 0;
  std::uint64_t pending_first_epoch_ = 0;
  std::uint64_t pending_last_epoch_ = 0;
  std::chrono::steady_clock::time_point first_pending_tp_{};
  std::uint64_t next_epoch_ = 1;
  bool stop_ = false;

  std::atomic<std::uint64_t> published_epoch_{0};
  std::atomic<std::uint64_t> durable_epoch_{0};
  std::atomic<bool> failed_{false};
  sync::EventCount work_ec_;     // producer -> committer
  sync::EventCount durable_ec_;  // committer -> strict waiters

  // Committer-side counters; single writer, racy-read tolerant (stats()).
  std::atomic<std::uint64_t> n_records_{0};
  std::atomic<std::uint64_t> n_bytes_{0};
  std::atomic<std::uint64_t> n_batches_{0};
  std::atomic<std::uint64_t> n_fsyncs_{0};
  std::atomic<std::uint64_t> n_rotations_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_retries_{0};
  std::atomic<std::uint64_t> n_segments_retired_{0};

  /// Registered raw vars (setup-time writes only; lock-free commit reads).
  std::unordered_map<const VarBase*, std::uint64_t> var_ids_;

  CommitFence ckpt_fence_;
  std::atomic<std::uint64_t> stream_mask_{0};
  /// Sealed (never-again-written) segments on disk, oldest first.
  std::mutex seg_mu_;
  std::vector<WalSegmentDetail> sealed_;

  std::thread committer_;
};

}  // namespace proust::stm
