// The STM runtime: a global version clock (with a pluggable advance scheme),
// a block-allocating stamp source, a conflict detection mode and statistics,
// plus the `atomically` retry loop.
//
// Multiple independent Stm instances may coexist (tests do this), but a
// given transaction touches vars through exactly one Stm, and nested
// `atomically` calls on the same thread must use the same Stm (flat
// nesting).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/backoff.hpp"
#include "common/topology.hpp"
#include "stm/commit_fence.hpp"
#include "stm/contention.hpp"
#include "stm/fwd.hpp"
#include "stm/mvcc.hpp"
#include "stm/options.hpp"
#include "stm/stats.hpp"
#include "stm/thread_registry.hpp"
#include "stm/txn.hpp"

namespace proust::stm {

class Stm {
 public:
  explicit Stm(Mode mode = Mode::Lazy, StmOptions options = {})
      : mode_(mode), options_(options),
        cm_(make_contention_manager(options_, cm_state_)), id_(next_id()) {
    admission_.configure(options_);
    if (options_.mvcc) {
      mvcc_ = std::make_unique<MvccState>(ThreadRegistry::kMaxSlots,
                                          options_.numa_placement);
    }
    if (options_.pinning != topo::PinPolicy::None) {
      pin_plan_ = topo::Topology::system().pin_plan(options_.pinning,
                                                    options_.pin_cpus);
    }
  }
  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  ~Stm() {
    for (std::atomic<StampCell*>& cell : numa_stamp_cells_) {
      if (StampCell* p = cell.load(std::memory_order_acquire)) {
        p->~StampCell();
        topo::free_onnode(p, sizeof(StampCell));
      }
    }
  }

  Mode mode() const noexcept { return mode_; }
  const StmOptions& options() const noexcept { return options_; }
  Stats& stats() noexcept { return stats_; }

  /// The contention-management subsystem (stm/contention.hpp): the policy
  /// object, the per-slot priority table, and the admission controller.
  ContentionManager& cm() noexcept { return *cm_; }
  CmState& cm_state() noexcept { return cm_state_; }
  AdmissionController& admission() noexcept { return admission_; }

  /// Multi-version snapshot state, or nullptr when StmOptions::mvcc is off
  /// (the Txn hot paths branch on this pointer exactly once).
  MvccState* mvcc_state() noexcept { return mvcc_.get(); }

  /// In-flight irrevocable-fallback hold, for the watchdog: entry time in
  /// steady-clock nanoseconds (0 = gate not held) and the holder's slot.
  std::uint64_t gate_entered_ns() const noexcept {
    return gate_entered_ns_.load(std::memory_order_acquire);
  }
  unsigned gate_holder() const noexcept {
    return gate_holder_.load(std::memory_order_relaxed);
  }

  Version clock_now() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }

  /// Produce this commit's write version under the configured clock scheme.
  /// Must be called *after* the committing transaction holds all of its
  /// write locks, with `lock_floor` the largest committed version those
  /// locks displaced. Every scheme upholds two invariants:
  ///  - `wv` postdates lock acquisition: a reader whose `rv >= wv` began
  ///    after this committer's locks were visible, so it can never have
  ///    copied a pre-commit value of ours;
  ///  - `wv > lock_floor`: a committed orec's version strictly increases,
  ///    so the exact-version compares in read-set validation can never
  ///    mistake two different committed states of one var for each other.
  /// IncOnCommit and PassOnFailure get the floor for free (the clock is
  /// ticked past every released version before anyone can displace it);
  /// LazyBump never writes the clock on commit, so it enforces the floor
  /// explicitly — otherwise back-to-back commits to one var would both
  /// release at clock+1 and reuse a version.
  Version generate_wv(Version lock_floor) noexcept {
    switch (options_.clock_scheme) {
      case ClockScheme::IncOnCommit: {
        const Version wv = clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
        assert(wv > lock_floor);
        return wv;
      }
      case ClockScheme::PassOnFailure: {
        Version g = clock_.load(std::memory_order_acquire);
        if (clock_.compare_exchange_strong(g, g + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          assert(g + 1 > lock_floor);
          return g + 1;
        }
        // Lost the race: the winner already moved the clock past us. Adopt
        // its published value instead of retrying the RMW — sharing a wv is
        // safe because both committers generated it while holding their
        // (necessarily disjoint) write locks, and the adopted value still
        // exceeds `lock_floor` (our locks happened-before our `g` load, so
        // g >= lock_floor, and the adopted value is > g).
        const Version wv = clock_.load(std::memory_order_acquire);
        assert(wv > lock_floor);
        return wv;
      }
      case ClockScheme::LazyBump: {
        // Commit "in the future" without touching the clock; readers that
        // meet the version catch the clock up (clock_catch_up). The load is
        // seq_cst, pairing with the seq_cst CAS in clock_catch_up, so a
        // catch-up that precedes this load in the seq_cst order is never
        // read stale (see DESIGN.md §7 for the residual multi-copy-atomic
        // hardware assumption this scheme shares with TL2's GV5).
        const Version wv = clock_.load(std::memory_order_seq_cst) + 1;
        return wv > lock_floor ? wv : lock_floor + 1;
      }
    }
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;  // unreachable
  }

  /// Raise the clock to at least `v` (no-op if already there). LazyBump
  /// readers call this when they observe a version ahead of the clock, so
  /// the retried attempt begins with `rv >= v` and can make progress. The
  /// successful CAS is seq_cst to pair with the LazyBump clock load in
  /// generate_wv.
  void clock_catch_up(Version v) noexcept {
    Version g = clock_.load(std::memory_order_acquire);
    while (g < v && !clock_.compare_exchange_weak(g, v,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_acquire)) {
    }
  }

  /// A process-unique stamp for `slot` (the calling thread's registry slot).
  /// Threads draw blocks of kStampBlock stamps with a single shared
  /// `fetch_add` and then hand them out from a slot-private cell, so the
  /// per-stamp cost is one private increment. Stamps are globally unique
  /// and strictly increasing per slot — a recycled slot resumes the previous
  /// holder's partially-used block, never reissuing a value.
  std::uint64_t next_stamp(unsigned slot) noexcept {
    StampCell& c = options_.numa_placement == topo::NumaPlacement::Off
                       ? stamp_cells_[slot]
                       : numa_stamp_cell(slot);
    if (c.next == c.end) {
      c.next = stamps_.fetch_add(kStampBlock, std::memory_order_relaxed);
      c.end = c.next + kStampBlock;
    }
    return ++c.next;
  }

  /// Run `body(Txn&)` atomically, retrying on conflict under the configured
  /// contention manager. Re-entrant calls on the same thread join the
  /// enclosing transaction (flat nesting). User exceptions abort the
  /// transaction (inverses/finish hooks run) and propagate. When admission
  /// control is enabled, new top-level calls may be throttled here before
  /// their first attempt.
  template <class F>
  auto atomically(F&& body) -> std::invoke_result_t<F&, Txn&> {
    return atomically_impl(std::forward<F>(body), /*declared_ro=*/false);
  }

  /// Like `atomically`, but the caller promises the body performs no writes,
  /// no validated (`read_validate`) reads, and no commit-locked hooks. Under
  /// StmOptions::mvcc every attempt runs as a snapshot reader: it pins a
  /// start timestamp, reads historical versions, and commits without taking
  /// locks or validating — such a call can never abort on conflict. A write
  /// inside the body is a contract violation and throws std::logic_error.
  /// Without mvcc this is identical to `atomically`. Nested calls join the
  /// enclosing transaction unchanged (a read-only body is safe inside any
  /// transaction; the promise only constrains this body, not the parent).
  template <class F>
  auto atomically_ro(F&& body) -> std::invoke_result_t<F&, Txn&> {
    return atomically_impl(std::forward<F>(body), /*declared_ro=*/true);
  }

 private:
  template <class F>
  auto atomically_impl(F&& body, bool declared_ro)
      -> std::invoke_result_t<F&, Txn&> {
    using R = std::invoke_result_t<F&, Txn&>;
    if (Txn* cur = Txn::current()) {
      if (&cur->stm() != this) {
        throw std::logic_error(
            "nested atomically on a different Stm instance");
      }
      return body(*cur);
    }
    Txn tx(*this);
    if (!pin_plan_.empty()) maybe_pin(tx.slot());
    if (declared_ro && mvcc_ != nullptr) tx.mvcc_declared_ = true;
    if (admission_.enabled()) {
      // Throttle before the first attempt: nothing transactional is held
      // yet, so blocking here sheds load without any deadlock exposure.
      const std::uint64_t waited = admission_.admit();
      if (waited != 0) stats_.counters(tx.slot()).count_throttle_ns(waited);
    }
    // Per-call bookkeeping that must run on every exit path, including a
    // propagating user exception: the attempts histogram and the admission
    // token.
    struct CallGuard {
      Stm* stm;
      Txn* tx;
      ~CallGuard() {
        stm->stats_.counters(tx->slot()).count_call(tx->attempt());
        if (stm->admission_.enabled()) stm->admission_.release();
      }
    } call_guard{this, &tx};
    // Seed from the thread slot as well as the stack address: stacks are
    // allocated at stride-aligned addresses, so address bits alone give
    // sibling threads correlated backoff sequences.
    Backoff backoff(0x7265747279ULL ^
                        (reinterpret_cast<std::uintptr_t>(&tx) >> 4) ^
                        (std::uint64_t{tx.slot()} * 0x9E3779B97F4A7C15ULL),
                    options_.backoff_min_spins, options_.backoff_max_spins,
                    options_.backoff_yield_after);
    for (;;) {
      // Irrevocable fallback: past the threshold of *eligible* attempts
      // (injected chaos aborts do not count), hold the commit gate
      // exclusively for the whole attempt — no other transaction can commit
      // under us, so our snapshot stays valid and the attempt succeeds.
      std::unique_lock<std::shared_mutex> exclusive_gate;
      std::uint64_t gate_t0 = 0;
      if (options_.fallback_after != 0 &&
          tx.eligible_attempts() + 1 > options_.fallback_after) {
        exclusive_gate = std::unique_lock<std::shared_mutex>(gate_);
        tx.set_gate_exempt(true);
        gate_t0 = steady_now_ns();
        gate_holder_.store(tx.slot(), std::memory_order_relaxed);
        gate_entered_ns_.store(gate_t0, std::memory_order_release);
      }
      try {
        tx.begin();
        if constexpr (std::is_void_v<R>) {
          body(tx);
          tx.commit();
          if (gate_t0 != 0) finish_gate_hold(tx.slot(), gate_t0);
          if (admission_.enabled()) admission_.note_outcome(true);
          return;
        } else {
          R result = body(tx);
          tx.commit();
          if (gate_t0 != 0) finish_gate_hold(tx.slot(), gate_t0);
          if (admission_.enabled()) admission_.note_outcome(true);
          return result;
        }
      } catch (const ConflictAbort& a) {
        tx.rollback(a.reason);
        if (exclusive_gate.owns_lock()) exclusive_gate.unlock();
        if (gate_t0 != 0) finish_gate_hold(tx.slot(), gate_t0);
        tx.set_gate_exempt(false);
        if (admission_.enabled()) admission_.note_outcome(false);
        pause_between_attempts(tx.slot(), backoff);
      } catch (...) {
        tx.rollback(AbortReason::Explicit);
        if (gate_t0 != 0) finish_gate_hold(tx.slot(), gate_t0);
        // Reset gate exemption before propagating: a Txn (or arena) reused
        // after a user exception must not inherit stale fallback state. The
        // exclusive gate itself is released by exclusive_gate's destructor.
        tx.set_gate_exempt(false);
        if (admission_.enabled()) admission_.note_outcome(false);
        throw;
      }
    }
  }

 public:
  /// Shared-side commit gate used when the fallback is enabled. Ordinary
  /// commits try-lock it; failure means a fallback transaction is running
  /// and the committer must abort (never block while holding STM locks).
  bool gate_enabled() const noexcept { return options_.fallback_after != 0; }
  std::shared_mutex& gate() noexcept { return gate_; }

 private:
  friend class Txn;

  static std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Inter-attempt pause, delegated to the contention manager. Timed into
  /// stats except under CmPolicy::None, whose whole point is a zero-cost
  /// immediate retry.
  void pause_between_attempts(unsigned slot, Backoff& backoff) {
    if (options_.cm_policy == CmPolicy::None) return;
    const std::uint64_t t0 = steady_now_ns();
    cm_->pause(backoff);
    stats_.counters(slot).count_backoff_ns(steady_now_ns() - t0);
  }

  /// Close out one irrevocable-fallback hold: record the duration, clear
  /// the watchdog-visible publication, and (optionally, debug builds only)
  /// die on a budget overrun.
  void finish_gate_hold(unsigned slot, std::uint64_t t0) noexcept {
    const std::uint64_t held = steady_now_ns() - t0;
    gate_entered_ns_.store(0, std::memory_order_release);
    gate_holder_.store(~0u, std::memory_order_relaxed);
    stats_.counters(slot).count_gate_hold_ns(held);
    if (options_.fallback_budget.count() > 0 && options_.fallback_budget_fatal) {
      assert(held <= static_cast<std::uint64_t>(
                         options_.fallback_budget.count()) &&
             "irrevocable fallback attempt exceeded its configured budget");
    }
  }

  /// Stamps handed out per thread slot; padded so neighbouring slots never
  /// share a cache line. Exclusively owned by the slot's current holder
  /// (handoff is ordered by the ThreadRegistry mutex).
  struct alignas(kCacheLine) StampCell {
    std::uint64_t next = 0;
    std::uint64_t end = 0;
  };
  static constexpr std::uint64_t kStampBlock = 1024;

  static std::uint64_t next_id() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Bind the slot's thread to its planned CPU, once per (thread, Stm). The
  /// marker is the Stm's process-unique id, not its address, so a new Stm
  /// reusing a destroyed one's storage still re-pins.
  void maybe_pin(unsigned slot) noexcept {
    thread_local std::uint64_t pinned_for = 0;
    if (pinned_for == id_) return;
    pinned_for = id_;
    topo::pin_self_to(
        pin_plan_[static_cast<std::size_t>(slot) % pin_plan_.size()]);
  }

  /// Node-local stamp cell, allocated lazily by the owning slot so the
  /// first touch (and, with libnuma, the explicit placement) happens on the
  /// slot's node. Only reached when numa_placement != Off; the default
  /// config keeps the constructor-touched inline array and pays nothing.
  StampCell& numa_stamp_cell(unsigned slot) noexcept {
    StampCell* p = numa_stamp_cells_[slot].load(std::memory_order_acquire);
    if (p == nullptr) [[unlikely]] {
      p = new (topo::alloc_onnode(sizeof(StampCell), -1)) StampCell{};
      numa_stamp_cells_[slot].store(p, std::memory_order_release);
    }
    return *p;
  }

  alignas(kCacheLine) std::atomic<Version> clock_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> stamps_{0};
  std::array<StampCell, ThreadRegistry::kMaxSlots> stamp_cells_{};
  std::array<std::atomic<StampCell*>, ThreadRegistry::kMaxSlots>
      numa_stamp_cells_{};
  std::vector<int> pin_plan_;
  Mode mode_;
  StmOptions options_;
  Stats stats_;
  std::shared_mutex gate_;
  CmState cm_state_;
  std::unique_ptr<ContentionManager> cm_;
  AdmissionController admission_;
  std::unique_ptr<MvccState> mvcc_;
  std::atomic<std::uint64_t> gate_entered_ns_{0};
  std::atomic<std::uint32_t> gate_holder_{~0u};
  std::uint64_t id_;
};

// ---------------------------------------------------------------------------
// Fast-path admission, inline. These run once per unlocked read; defining
// them here (below Stm, whose clock the cut consults) keeps the per-lookup
// cost to the loads themselves instead of a cross-TU call and its spills.
// The cold edges — extension, the own-pin / own-fence excuses, chaos — stay
// out of line in txn.cpp.
// ---------------------------------------------------------------------------

inline bool Txn::unlocked_reads_valid(bool fences_entered) const noexcept {
  // LoadLoad barrier: order the caller's preceding base-structure reads
  // (and any data reads since the last validation) before the word
  // re-loads — the seqlock reader-side recipe.
  std::atomic_thread_fence(std::memory_order_acquire);
  for (const detail::SeqReadEntry& e : arena_.seq_reads) {
    const std::uint64_t w = e.word->load(std::memory_order_acquire);
    if (w == e.observed) [[likely]] continue;
    // One past the observed (even) value with the pin being our own: this
    // attempt read the stripe and later mutated it. The eager mutation is
    // guarded by the abstract lock + undo hooks, so the admitted read stays
    // coherent with this transaction's own view.
    if (w == e.observed + 1 && holds_seq_word(e.word)) continue;
    return false;
  }
  return unlocked_fence_reads_valid(fences_entered);
}

inline bool Txn::unlocked_fence_reads_valid(
    bool fences_entered) const noexcept {
  for (const detail::FenceReadEntry& e : arena_.fence_reads) {
    const std::uint64_t w = e.fence->word();
    if (w == e.observed) [[likely]] continue;
    // At commit time this transaction has entered its own registered
    // fences; exactly one own open bracket on top of the observed
    // quiescent word is not a foreign replay.
    if (fences_entered && w == e.observed + CommitFence::kEntry &&
        owns_fence(e.fence)) {
      continue;
    }
    return false;
  }
  return true;
}

inline bool Txn::fast_read_cut() {
  // Every admitted unlocked read must still hold before the serialization
  // point can move to "now". A miss is permanent (the words are monotone),
  // so it aborts rather than falls back.
  if (!unlocked_reads_valid(/*fences_entered=*/false)) {
    throw ConflictAbort{AbortReason::ValidationFailed};
  }
  // Unlocked reads carry no version, so admitting one is only sound at a
  // cut where the *entire* read set is current. Under IncOnCommit an
  // unmoved clock proves no writer committed since rv_; the other schemes
  // cannot prove quiescence from the clock (LazyBump never ticks), so any
  // STM read set forces a full extension.
  if (!arena_.reads.empty() &&
      (scheme_ != ClockScheme::IncOnCommit || stm_.clock_now() != rv_))
      [[unlikely]] {
    if (snapshot_frozen_) return false;  // cannot extend; use the slow path
    extend_or_abort();
  }
  return true;
}

inline bool Txn::admit_unlocked_read(const std::atomic<std::uint64_t>* word,
                                     std::uint64_t observed) {
  assert(active_ && !mvcc_reader_);
  if (arena_.seq_reads.size() + arena_.fence_reads.size() >=
      kMaxUnlockedReads) {
    return false;
  }
  // Inlined fast_read_cut with the dedup probe fused into the validation
  // scan — one pass over the entries instead of two. Semantics match
  // fast_read_cut exactly: a moved word without the own-pin excuse is a
  // permanent miss (the words are monotone), so it aborts.
  std::atomic_thread_fence(std::memory_order_acquire);
  bool covered = false;
  for (const detail::SeqReadEntry& e : arena_.seq_reads) {
    const std::uint64_t w = e.word->load(std::memory_order_acquire);
    if (w != e.observed) [[unlikely]] {
      if (!(w == e.observed + 1 && holds_seq_word(e.word))) {
        throw ConflictAbort{AbortReason::ValidationFailed};
      }
    }
    covered |= (e.word == word);
  }
  if (!arena_.fence_reads.empty() &&
      !unlocked_fence_reads_valid(/*fences_entered=*/false)) [[unlikely]] {
    throw ConflictAbort{AbortReason::ValidationFailed};
  }
  // See fast_read_cut: a non-empty STM read set forces proof of a current
  // cut (unmoved IncOnCommit clock) or a full extension.
  if (!arena_.reads.empty() &&
      (scheme_ != ClockScheme::IncOnCommit || stm_.clock_now() != rv_))
      [[unlikely]] {
    if (snapshot_frozen_) return false;  // cannot extend; use the slow path
    extend_or_abort();
  }
  // Re-check after the cut: the extension may have admitted a clock that a
  // mutator of this very stripe advanced.
  if (word->load(std::memory_order_acquire) != observed) return false;
  if (!covered) arena_.seq_reads.push_back({word, observed});
  stats_.count_fastpath_hit();
  return true;
}

inline bool Txn::admit_unlocked_fence_read(const CommitFence* fence,
                                           std::uint64_t observed) {
  assert(active_ && !mvcc_reader_);
  assert(CommitFence::quiescent(observed));
  if (arena_.seq_reads.size() + arena_.fence_reads.size() >=
      kMaxUnlockedReads) {
    return false;
  }
  if (!fast_read_cut()) return false;
  if (fence->word() != observed) return false;
  for (const detail::FenceReadEntry& e : arena_.fence_reads) {
    if (e.fence == fence) {
      stats_.count_fastpath_hit();
      return true;
    }
  }
  arena_.fence_reads.push_back({fence, observed});
  stats_.count_fastpath_hit();
  return true;
}

}  // namespace proust::stm
