// The STM runtime: a global version clock, a stamp source, a conflict
// detection mode and statistics, plus the `atomically` retry loop.
//
// Multiple independent Stm instances may coexist (tests do this), but a
// given transaction touches vars through exactly one Stm, and nested
// `atomically` calls on the same thread must use the same Stm (flat
// nesting).
#pragma once

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/backoff.hpp"
#include "stm/fwd.hpp"
#include "stm/options.hpp"
#include "stm/stats.hpp"
#include "stm/txn.hpp"

namespace proust::stm {

class Stm {
 public:
  explicit Stm(Mode mode = Mode::Lazy, StmOptions options = {}) noexcept
      : mode_(mode), options_(options) {}
  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  Mode mode() const noexcept { return mode_; }
  const StmOptions& options() const noexcept { return options_; }
  Stats& stats() noexcept { return stats_; }

  Version clock_now() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  Version clock_advance() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  std::uint64_t next_stamp() noexcept {
    return stamps_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Run `body(Txn&)` atomically, retrying on conflict with randomized
  /// exponential backoff. Re-entrant calls on the same thread join the
  /// enclosing transaction (flat nesting). User exceptions abort the
  /// transaction (inverses/finish hooks run) and propagate.
  template <class F>
  auto atomically(F&& body) -> std::invoke_result_t<F&, Txn&> {
    using R = std::invoke_result_t<F&, Txn&>;
    if (Txn* cur = Txn::current()) {
      if (&cur->stm() != this) {
        throw std::logic_error(
            "nested atomically on a different Stm instance");
      }
      return body(*cur);
    }
    Txn tx(*this);
    Backoff backoff(0x7265747279ULL ^
                    (reinterpret_cast<std::uintptr_t>(&tx) >> 4));
    for (;;) {
      // Irrevocable fallback: past the threshold, hold the commit gate
      // exclusively for the whole attempt — no other transaction can commit
      // under us, so our snapshot stays valid and the attempt succeeds.
      std::unique_lock<std::shared_mutex> exclusive_gate;
      if (options_.fallback_after != 0 &&
          tx.attempt() + 1 > options_.fallback_after) {
        exclusive_gate = std::unique_lock<std::shared_mutex>(gate_);
        tx.set_gate_exempt(true);
      }
      try {
        tx.begin();
        if constexpr (std::is_void_v<R>) {
          body(tx);
          tx.commit();
          return;
        } else {
          R result = body(tx);
          tx.commit();
          return result;
        }
      } catch (const ConflictAbort& a) {
        tx.rollback(a.reason);
        if (exclusive_gate.owns_lock()) exclusive_gate.unlock();
        tx.set_gate_exempt(false);
        pause_between_attempts(backoff);
      } catch (...) {
        tx.rollback(AbortReason::Explicit);
        // Reset gate exemption before propagating: a Txn (or arena) reused
        // after a user exception must not inherit stale fallback state. The
        // exclusive gate itself is released by exclusive_gate's destructor.
        tx.set_gate_exempt(false);
        throw;
      }
    }
  }

  /// Shared-side commit gate used when the fallback is enabled. Ordinary
  /// commits try-lock it; failure means a fallback transaction is running
  /// and the committer must abort (never block while holding STM locks).
  bool gate_enabled() const noexcept { return options_.fallback_after != 0; }
  std::shared_mutex& gate() noexcept { return gate_; }

 private:
  friend class Txn;

  void pause_between_attempts(Backoff& backoff) {
    switch (options_.cm_policy) {
      case CmPolicy::ExponentialBackoff: backoff.pause(); break;
      case CmPolicy::Yield: std::this_thread::yield(); break;
      case CmPolicy::None: break;
    }
  }

  alignas(64) std::atomic<Version> clock_{0};
  alignas(64) std::atomic<std::uint64_t> stamps_{0};
  Mode mode_;
  StmOptions options_;
  Stats stats_;
  std::shared_mutex gate_;
};

}  // namespace proust::stm
