// On-disk layout of the durability artifacts (host byte order — segments
// and checkpoints are crash-recovery artifacts of one machine, not an
// interchange format). Shared by the WAL writer/recovery (stm/wal.cpp), the
// checkpointer (stm/checkpoint.cpp), and the format-edge tests that craft
// corrupt files byte by byte; scripts/wal_inspect.py mirrors it in Python.
//
//   segment  := seg_header batch*
//   seg_header := magic u64 | version u32 | seg_index u32 | crc u32
//                 (crc covers the 16 bytes before it)           = 20 bytes
//   batch    := batch_header record*
//   batch_header := magic u32 | n_records u32 | payload_len u64 |
//                   first_epoch u64 | last_epoch u64 |
//                   payload_crc u32 | header_crc u32             = 40 bytes
//   record   := epoch u64 | stream u32 | len u32 | crc u32 | payload
//                 (crc covers the payload)               = 20 bytes + len
//
//   checkpoint := ckpt_header payload
//   ckpt_header := magic u64 | version u32 | reserved u32 |
//                  covering_epoch u64 | n_records u64 | payload_len u64 |
//                  payload_crc u32 | header_crc u32              = 48 bytes
//                  (header_crc covers the 44 bytes before it)
//   payload  := ([stream u32][len u32][bytes])*  — the staged-record format
//               (Wal::stage_record / stage_var_record), NOT the segment
//               record format: checkpoint records carry no epoch of their
//               own, they are all state *at* covering_epoch.
//
// The sealed `payload_len` plus the two batch CRCs detect a torn append at
// any byte; the per-record CRC additionally localizes single-record rot.
// Checkpoints are written tmp+rename, so a torn checkpoint only exists as
// bit rot on a renamed file — which the two checkpoint CRCs catch, failing
// recovery over to the previous retained checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.hpp"

namespace proust::stm::walfmt {

inline constexpr std::uint64_t kSegMagic = 0x50524F5553575331ULL;  // PROUSWS1
inline constexpr std::uint32_t kSegVersion = 1;
inline constexpr std::uint32_t kBatchMagic = 0x50424154u;  // PBAT
inline constexpr std::size_t kSegHeaderSize = 20;
inline constexpr std::size_t kBatchHeaderSize = 40;
inline constexpr std::size_t kRecHeaderSize = 20;

inline constexpr std::uint64_t kCkptMagic = 0x50524F5553434B31ULL;  // PROUSCK1
inline constexpr std::uint32_t kCkptVersion = 1;
inline constexpr std::size_t kCkptHeaderSize = 48;

inline void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  std::uint8_t t[4];
  std::memcpy(t, &v, 4);
  b.insert(b.end(), t, t + 4);
}

inline void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  std::uint8_t t[8];
  std::memcpy(t, &v, 8);
  b.insert(b.end(), t, t + 8);
}

inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void seg_header_bytes(std::vector<std::uint8_t>& out,
                             std::uint32_t index) {
  put_u64(out, kSegMagic);
  put_u32(out, kSegVersion);
  put_u32(out, index);
  put_u32(out, crc32(out.data(), 16));
}

inline std::string seg_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06u.wal", index);
  return buf;
}

/// Parse "seg-NNNNNN.wal" -> index; false for anything else.
inline bool parse_seg_name(const std::string& name, std::uint32_t& index) {
  if (name.size() != 14 || name.rfind("seg-", 0) != 0 ||
      name.compare(10, 4, ".wal") != 0) {
    return false;
  }
  std::uint32_t v = 0;
  for (int i = 4; i < 10; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  index = v;
  return true;
}

/// Checkpoint file names sort by covering epoch: "ckpt-%016llx.ckpt".
inline std::string ckpt_name(std::uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "ckpt-%016llx.ckpt",
                static_cast<unsigned long long>(epoch));
  return buf;
}

/// Parse "ckpt-XXXXXXXXXXXXXXXX.ckpt" -> covering epoch.
inline bool parse_ckpt_name(const std::string& name, std::uint64_t& epoch) {
  if (name.size() != 26 || name.rfind("ckpt-", 0) != 0 ||
      name.compare(21, 5, ".ckpt") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (int i = 5; i < 21; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    std::uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  epoch = v;
  return true;
}

inline void ckpt_header_bytes(std::vector<std::uint8_t>& out,
                              std::uint64_t covering_epoch,
                              std::uint64_t n_records,
                              const std::vector<std::uint8_t>& payload) {
  put_u64(out, kCkptMagic);
  put_u32(out, kCkptVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, covering_epoch);
  put_u64(out, n_records);
  put_u64(out, payload.size());
  put_u32(out, crc32(payload.data(), payload.size()));
  put_u32(out, crc32(out.data(), 44));
}

}  // namespace proust::stm::walfmt
