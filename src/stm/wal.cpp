#include "stm/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32.hpp"
#include "stm/chaos.hpp"

namespace proust::stm {

namespace {

namespace fs = std::filesystem;

// On-disk layout (host byte order — segments are a crash-recovery artifact
// of one machine, not an interchange format):
//
//   segment  := seg_header batch*
//   seg_header := magic u64 | version u32 | seg_index u32 | crc u32
//                 (crc covers the 16 bytes before it)           = 20 bytes
//   batch    := batch_header record*
//   batch_header := magic u32 | n_records u32 | payload_len u64 |
//                   first_epoch u64 | last_epoch u64 |
//                   payload_crc u32 | header_crc u32             = 40 bytes
//   record   := epoch u64 | stream u32 | len u32 | crc u32 | payload
//                 (crc covers the payload)               = 20 bytes + len
//
// The sealed `payload_len` plus the two batch CRCs detect a torn append at
// any byte; the per-record CRC additionally localizes single-record rot.
inline constexpr std::uint64_t kSegMagic = 0x50524F5553575331ULL;  // PROUSWS1
inline constexpr std::uint32_t kSegVersion = 1;
inline constexpr std::uint32_t kBatchMagic = 0x50424154u;  // PBAT
inline constexpr std::size_t kSegHeaderSize = 20;
inline constexpr std::size_t kBatchHeaderSize = 40;
inline constexpr std::size_t kRecHeaderSize = 20;

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  std::uint8_t t[4];
  std::memcpy(t, &v, 4);
  b.insert(b.end(), t, t + 4);
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  std::uint8_t t[8];
  std::memcpy(t, &v, 8);
  b.insert(b.end(), t, t + 8);
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool full_write(int fd, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void seg_header_bytes(std::vector<std::uint8_t>& out, std::uint32_t index) {
  put_u64(out, kSegMagic);
  put_u32(out, kSegVersion);
  put_u32(out, index);
  put_u32(out, crc32(out.data(), 16));
}

std::string seg_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06u.wal", index);
  return buf;
}

/// Parse "seg-NNNNNN.wal" -> index; false for anything else.
bool parse_seg_name(const std::string& name, std::uint32_t& index) {
  if (name.size() != 14 || name.rfind("seg-", 0) != 0 ||
      name.compare(10, 4, ".wal") != 0) {
    return false;
  }
  std::uint32_t v = 0;
  for (int i = 4; i < 10; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  index = v;
  return true;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Staging helpers (transaction side)

void Wal::stage_record(std::vector<std::uint8_t>& buf, std::uint32_t stream,
                       const void* data, std::size_t n) {
  put_u32(buf, stream);
  put_u32(buf, static_cast<std::uint32_t>(n));
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + n);
}

void Wal::stage_var_record(std::vector<std::uint8_t>& buf, std::uint64_t var_id,
                           const void* value, std::size_t n) {
  put_u32(buf, kVarStream);
  put_u32(buf, static_cast<std::uint32_t>(8 + n));
  put_u64(buf, var_id);
  const auto* p = static_cast<const std::uint8_t*>(value);
  buf.insert(buf.end(), p, p + n);
}

bool Wal::decode_var_record(const WalRecordView& r, std::uint64_t& var_id,
                            const std::uint8_t*& value,
                            std::uint32_t& size) noexcept {
  if (r.stream != kVarStream || r.size < 8) return false;
  var_id = get_u64(r.data);
  value = r.data + 8;
  size = r.size - 8;
  return true;
}

// ---------------------------------------------------------------------------
// Construction / teardown

Wal::Wal(WalOptions opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) {
    throw std::invalid_argument("WalOptions::dir must be set");
  }
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("wal: cannot create directory " + opts_.dir);
  }
  dir_fd_ = ::open(opts_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);

  // Resume after whatever valid history is on disk: the scan truncates any
  // torn tail and tells us the newest surviving epoch; appending continues
  // in a *fresh* segment so this instance never writes into a file an
  // earlier instance half-finished.
  const WalRecoveryInfo info = recover(opts_.dir, {});
  next_epoch_ = info.last_epoch + 1;

  std::uint32_t max_index = 0;
  bool any = false;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(opts_.dir, ec)) {
    std::uint32_t idx;
    if (parse_seg_name(ent.path().filename().string(), idx)) {
      if (!any || idx > max_index) max_index = idx;
      any = true;
    }
  }
  seg_index_ = any ? max_index + 1 : 0;

  open_fresh_segment();
  committer_ = std::thread([this] { committer_main(); });
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_ec_.notify_all();
  if (committer_.joinable()) committer_.join();
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
  if (dir_fd_ >= 0) ::close(dir_fd_);
}

void Wal::open_fresh_segment() {
  seg_path_ = opts_.dir + "/" + seg_name(seg_index_);
  fd_ = ::open(seg_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw std::runtime_error("wal: cannot create segment " + seg_path_);
  }
  std::vector<std::uint8_t> h;
  seg_header_bytes(h, seg_index_);
  if (!full_write(fd_, h.data(), h.size()) || ::fsync(fd_) != 0) {
    throw std::runtime_error("wal: cannot initialize segment " + seg_path_);
  }
  if (dir_fd_ >= 0) ::fsync(dir_fd_);
  seg_bytes_ = h.size();
}

// ---------------------------------------------------------------------------
// Publish side

std::uint64_t Wal::publish(const std::uint8_t* staged, std::size_t bytes,
                           std::uint32_t records) {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t e = next_epoch_++;
  const bool was_empty = pending_.empty();
  // Pending unit: epoch + record count + sealed byte length, then the staged
  // records verbatim. Expansion to the on-disk format (and all CRC work)
  // happens on the committer thread, off the commit-fence critical path.
  put_u64(pending_, e);
  put_u32(pending_, records);
  put_u32(pending_, static_cast<std::uint32_t>(bytes));
  pending_.insert(pending_.end(), staged, staged + bytes);
  pending_records_ += records;
  pending_last_epoch_ = e;
  if (was_empty) {
    pending_first_epoch_ = e;
    first_pending_tp_ = std::chrono::steady_clock::now();
  }
  const bool kick = was_empty || pending_records_ >= opts_.fsync_every_n;
  published_epoch_.store(e, std::memory_order_release);
  lk.unlock();
  if (kick) work_ec_.notify_all();
  return e;
}

void Wal::wait_durable(std::uint64_t epoch) {
  for (;;) {
    if (durable_epoch_.load(std::memory_order_acquire) >= epoch) return;
    if (failed()) {
      throw WalUnavailable(
          "wal: log failed before the commit's batch became durable");
    }
    const std::uint32_t t = durable_ec_.prepare();
    if (durable_epoch_.load(std::memory_order_acquire) >= epoch) return;
    durable_ec_.wait_until(
        t, std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  }
}

void Wal::flush() {
  const std::uint64_t e = published_epoch_.load(std::memory_order_acquire);
  if (e == 0) return;
  work_ec_.notify_all();
  wait_durable(e);
}

WalStats Wal::stats() const noexcept {
  WalStats s;
  s.records = n_records_.load(std::memory_order_relaxed);
  s.bytes = n_bytes_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.fsyncs = n_fsyncs_.load(std::memory_order_relaxed);
  s.rotations = n_rotations_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.published_epoch = published_epoch_.load(std::memory_order_relaxed);
  s.durable_epoch = durable_epoch_.load(std::memory_order_relaxed);
  return s;
}

void Wal::register_var(std::uint64_t id, const VarBase& var) {
  var_ids_.emplace(&var, id);
}

bool Wal::var_id(const VarBase* var, std::uint64_t& id) const noexcept {
  const auto it = var_ids_.find(var);
  if (it == var_ids_.end()) return false;
  id = it->second;
  return true;
}

// ---------------------------------------------------------------------------
// Committer side

bool Wal::chaos_crash(ChaosPoint p) noexcept {
  if (opts_.chaos == nullptr) [[likely]] return false;
  const ChaosAction a = opts_.chaos->decide(p);
  if (a == ChaosAction::None) return false;
  if (a == ChaosAction::Crash) return true;
  // Abort/Timeout have no meaning on the committer thread; every counted
  // decision must have an effect, so they coerce to a delay (which widens
  // the published-but-not-durable window — the interesting one).
  opts_.chaos->inject_delay();
  return false;
}

void Wal::fail(const char* op, int err, const std::string& path) {
  n_errors_.fetch_add(1, std::memory_order_relaxed);
  const bool already = failed_.exchange(true, std::memory_order_acq_rel);
  durable_ec_.notify_all();  // strict waiters must stop waiting and throw
  if (already) return;
  const WalError e{op, err, path};
  if (opts_.on_error) {
    opts_.on_error(e);
  } else {
    std::fprintf(stderr,
                 "[wal] FAILED: %s on %s: %s — durability is now read-only\n",
                 op, path.c_str(), std::strerror(err));
  }
}

void Wal::committer_main() {
  for (;;) {
    Batch b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Park until there is work (long deadline — publishers notify the
      // empty->nonempty transition, so an idle log costs ~no wakeups).
      while (pending_.empty() && !stop_) {
        const std::uint32_t t = work_ec_.prepare();
        lk.unlock();
        work_ec_.wait_until(t, std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(50));
        lk.lock();
      }
      if (pending_.empty()) return;  // stopped and fully drained
      // Batching window: wait for fsync_every_n records or the interval
      // measured from the oldest pending record, whichever first.
      while (!stop_ && pending_records_ < opts_.fsync_every_n) {
        const auto deadline = first_pending_tp_ + opts_.fsync_interval_us;
        if (std::chrono::steady_clock::now() >= deadline) break;
        const std::uint32_t t = work_ec_.prepare();
        lk.unlock();
        work_ec_.wait_until(t, deadline);
        lk.lock();
      }
      b.units.swap(pending_);
      b.records = pending_records_;
      b.first_epoch = pending_first_epoch_;
      b.last_epoch = pending_last_epoch_;
      pending_records_ = 0;
    }
    // A failed log drops batches on the floor: durable_epoch stops moving,
    // strict waiters throw, and publish-side commits refuse up front.
    if (!failed()) write_batch(b);
  }
}

void Wal::write_batch(Batch& b) {
  // WalSeal gate: crash after draining, before anything reaches the file —
  // the whole batch (published, possibly relaxed-acked) is lost.
  if (chaos_crash(ChaosPoint::WalSeal)) ::_exit(kWalCrashExitCode);

  // The drain is split into frames: each frame becomes one on-disk batch,
  // capped so header+payload fits a segment's data budget (a single
  // oversized transaction still gets a frame of its own). Rotation thereby
  // interleaves with a large drain instead of waiting for the next one.
  // The single fsync at the end covers every frame — rotate_segment fsyncs
  // the outgoing segment before switching, so no frame is left uncovered.
  const std::size_t seg_budget =
      opts_.segment_bytes > kSegHeaderSize + kBatchHeaderSize
          ? opts_.segment_bytes - kSegHeaderSize - kBatchHeaderSize
          : 0;

  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> header;
  std::uint64_t frame_first = 0;
  std::uint64_t frame_last = 0;
  std::uint32_t frame_records = 0;

  const auto emit_frame = [&]() -> bool {
    header.clear();
    put_u32(header, kBatchMagic);
    put_u32(header, frame_records);
    put_u64(header, payload.size());
    put_u64(header, frame_first);
    put_u64(header, frame_last);
    put_u32(header, crc32(payload.data(), payload.size()));
    put_u32(header, crc32(header.data(), header.size()));

    // Keep frames whole within a segment: rotate first if this one would
    // push the segment past its limit (and it holds at least one frame).
    if (seg_bytes_ > kSegHeaderSize &&
        seg_bytes_ + header.size() + payload.size() > opts_.segment_bytes) {
      if (!rotate_segment()) return false;  // failed -> fail-stop
    }

    // WalAppend gate: a crash draw *tears* the append — a prefix of the
    // frame reaches the file before the kill, which is exactly the torn
    // tail the recovery checksums must detect and truncate.
    if (chaos_crash(ChaosPoint::WalAppend)) {
      (void)full_write(fd_, header.data(), header.size());
      (void)full_write(fd_, payload.data(), payload.size() / 2);
      ::_exit(kWalCrashExitCode);
    }
    if (const int e = injected_io_error(ChaosPoint::WalAppend)) {
      fail("write", e, seg_path_);
      return false;
    }
    if (!full_write(fd_, header.data(), header.size()) ||
        !full_write(fd_, payload.data(), payload.size())) {
      fail("write", errno, seg_path_);
      return false;
    }
    seg_bytes_ += header.size() + payload.size();
    n_records_.fetch_add(frame_records, std::memory_order_relaxed);
    n_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
    n_batches_.fetch_add(1, std::memory_order_relaxed);
    payload.clear();
    frame_records = 0;
    return true;
  };

  std::size_t pos = 0;
  while (pos < b.units.size()) {
    const std::uint64_t epoch = get_u64(b.units.data() + pos);
    const std::uint32_t records = get_u32(b.units.data() + pos + 8);
    const std::uint32_t nbytes = get_u32(b.units.data() + pos + 12);
    pos += 16;
    // Units (transactions) never split across frames, so the sealed
    // first/last epochs of consecutive frames stay dense.
    const std::size_t expanded = nbytes + std::size_t{records} * 12;
    if (frame_records > 0 && seg_budget > 0 &&
        payload.size() + expanded > seg_budget) {
      if (!emit_frame()) return;  // batch tail dropped on fail-stop
    }
    if (frame_records == 0) frame_first = epoch;
    frame_last = epoch;
    frame_records += records;
    const std::size_t unit_end = pos + nbytes;
    while (pos < unit_end) {
      const std::uint32_t stream = get_u32(b.units.data() + pos);
      const std::uint32_t len = get_u32(b.units.data() + pos + 4);
      pos += 8;
      put_u64(payload, epoch);
      put_u32(payload, stream);
      put_u32(payload, len);
      put_u32(payload, crc32(b.units.data() + pos, len));
      payload.insert(payload.end(), b.units.data() + pos,
                     b.units.data() + pos + len);
      pos += len;
    }
  }
  if (frame_records > 0 && !emit_frame()) return;

  // WalFsync gate: crash after the write, before the fsync — the batch sits
  // in the page cache; relaxed acks may be lost, strict acks were never
  // given (durable_epoch has not covered them).
  if (chaos_crash(ChaosPoint::WalFsync)) ::_exit(kWalCrashExitCode);
  if (const int e = injected_io_error(ChaosPoint::WalFsync)) {
    fail("fsync", e, seg_path_);
    return;
  }
  if (::fsync(fd_) != 0) {
    fail("fsync", errno, seg_path_);
    return;
  }

  n_fsyncs_.fetch_add(1, std::memory_order_relaxed);
  durable_epoch_.store(b.last_epoch, std::memory_order_release);
  durable_ec_.notify_all();
}

bool Wal::rotate_segment() {
  const std::uint32_t next = seg_index_ + 1;
  const std::string final_path = opts_.dir + "/" + seg_name(next);
  const std::string tmp_path = final_path + ".tmp";
  const int nfd =
      ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (nfd < 0) {
    fail("open", errno, tmp_path);
    return false;
  }
  std::vector<std::uint8_t> h;
  seg_header_bytes(h, next);
  if (!full_write(nfd, h.data(), h.size()) || ::fsync(nfd) != 0) {
    fail("write", errno, tmp_path);
    ::close(nfd);
    return false;
  }
  // WalRotate gate: crash between creating the tmp segment and renaming it
  // into place — recovery must discard the orphaned .tmp and keep reading
  // the old tail segment.
  if (chaos_crash(ChaosPoint::WalRotate)) ::_exit(kWalCrashExitCode);
  if (const int e = injected_io_error(ChaosPoint::WalRotate)) {
    fail("rename", e, tmp_path);
    ::close(nfd);
    return false;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    fail("rename", errno, tmp_path);
    ::close(nfd);
    return false;
  }
  if (dir_fd_ >= 0) ::fsync(dir_fd_);
  ::fsync(fd_);
  ::close(fd_);
  fd_ = nfd;
  seg_index_ = next;
  seg_path_ = final_path;
  seg_bytes_ = h.size();
  n_rotations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// Recovery

WalRecoveryInfo Wal::recover(
    const std::string& dir,
    const std::function<void(const WalRecordView&)>& handler) {
  WalRecoveryInfo info;
  std::error_code ec;
  std::vector<std::pair<std::uint32_t, std::string>> segs;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Half-finished rotation: the renamed form never existed, nothing in
      // it was ever acked. Discard.
      std::error_code rm_ec;
      fs::remove(ent.path(), rm_ec);
      ++info.skipped_tmp;
      continue;
    }
    std::uint32_t idx;
    if (parse_seg_name(name, idx)) segs.emplace_back(idx, ent.path().string());
  }
  if (ec) return info;  // missing/unreadable directory == empty log
  std::sort(segs.begin(), segs.end());

  std::uint64_t expected = 1;  // epochs are dense from 1
  std::vector<std::uint8_t> buf;
  std::vector<WalRecordView> views;
  for (const auto& [idx, path] : segs) {
    if (info.torn_tail) break;  // nothing after a torn point is trustworthy
    if (!read_file(path, buf)) {
      info.torn_tail = true;
      break;
    }
    const auto torn_at = [&](std::size_t off) {
      info.torn_tail = true;
      info.truncated_bytes += buf.size() - off;
      (void)::truncate(path.c_str(), static_cast<off_t>(off));
    };
    if (buf.size() < kSegHeaderSize || get_u64(buf.data()) != kSegMagic ||
        get_u32(buf.data() + 8) != kSegVersion ||
        get_u32(buf.data() + 16) != crc32(buf.data(), 16)) {
      torn_at(0);
      break;
    }
    ++info.segments;
    std::size_t pos = kSegHeaderSize;
    while (pos < buf.size()) {
      const std::size_t batch_start = pos;
      if (buf.size() - pos < kBatchHeaderSize) {
        torn_at(batch_start);
        break;
      }
      const std::uint32_t magic = get_u32(buf.data() + pos);
      const std::uint32_t n_records = get_u32(buf.data() + pos + 4);
      const std::uint64_t payload_len = get_u64(buf.data() + pos + 8);
      const std::uint64_t first_epoch = get_u64(buf.data() + pos + 16);
      const std::uint64_t last_epoch = get_u64(buf.data() + pos + 24);
      const std::uint32_t payload_crc = get_u32(buf.data() + pos + 32);
      const std::uint32_t header_crc = get_u32(buf.data() + pos + 36);
      if (magic != kBatchMagic || header_crc != crc32(buf.data() + pos, 36) ||
          payload_len > buf.size() - pos - kBatchHeaderSize) {
        torn_at(batch_start);
        break;
      }
      pos += kBatchHeaderSize;
      if (payload_crc != crc32(buf.data() + pos, payload_len)) {
        torn_at(batch_start);
        break;
      }
      // Validate the sealed payload record by record before delivering any
      // of it: bounds, per-record CRC, and epoch density (each record's
      // epoch is the previous unit's or exactly one past it, anchored at
      // the batch header's sealed first/last epochs).
      views.clear();
      const std::size_t payload_end = pos + payload_len;
      std::uint64_t unit_epoch = expected;
      bool valid = first_epoch == expected && last_epoch >= first_epoch;
      std::size_t rp = pos;
      while (valid && rp < payload_end) {
        if (payload_end - rp < kRecHeaderSize) {
          valid = false;
          break;
        }
        const std::uint64_t epoch = get_u64(buf.data() + rp);
        const std::uint32_t stream = get_u32(buf.data() + rp + 8);
        const std::uint32_t len = get_u32(buf.data() + rp + 12);
        const std::uint32_t rec_crc = get_u32(buf.data() + rp + 16);
        rp += kRecHeaderSize;
        if (len > payload_end - rp || rec_crc != crc32(buf.data() + rp, len) ||
            (epoch != unit_epoch && epoch != unit_epoch + 1) ||
            epoch > last_epoch) {
          valid = false;
          break;
        }
        unit_epoch = epoch;
        views.push_back(WalRecordView{epoch, stream, buf.data() + rp, len});
        rp += len;
      }
      if (!valid || unit_epoch != last_epoch) {
        torn_at(batch_start);
        break;
      }
      if (handler) {
        for (const WalRecordView& v : views) handler(v);
      }
      info.records += views.size();
      (void)n_records;
      expected = last_epoch + 1;
      pos = payload_end;
    }
  }
  info.last_epoch = expected - 1;
  return info;
}

}  // namespace proust::stm
