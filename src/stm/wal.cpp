#include "stm/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32.hpp"
#include "stm/chaos.hpp"
#include "stm/var.hpp"
#include "stm/wal_format.hpp"

namespace proust::stm {

namespace {

namespace fs = std::filesystem;
using namespace walfmt;

/// Raw full write, no policy: used only to manufacture deterministic torn
/// appends at the WalAppend/CkptWrite crash gates (the bytes must reach the
/// file before the _exit, whatever the injected-fault config says).
bool full_write_raw(int fd, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const common::UniqueFd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd) return false;
  out.clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd.get(), buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  return true;
}

/// A checkpoint file loaded and fully validated (both CRCs, the name/header
/// epoch agreement, and the record framing) before any record is delivered.
struct CkptLoaded {
  std::uint64_t epoch = 0;
  std::uint64_t n_records = 0;
  std::vector<std::uint8_t> buf;
};

bool load_checkpoint(const std::string& path, std::uint64_t name_epoch,
                     CkptLoaded& out) {
  if (!read_file(path, out.buf)) return false;
  const auto& b = out.buf;
  if (b.size() < kCkptHeaderSize || get_u64(b.data()) != kCkptMagic ||
      get_u32(b.data() + 8) != kCkptVersion) {
    return false;
  }
  const std::uint64_t epoch = get_u64(b.data() + 16);
  const std::uint64_t n_records = get_u64(b.data() + 24);
  const std::uint64_t payload_len = get_u64(b.data() + 32);
  const std::uint32_t payload_crc = get_u32(b.data() + 40);
  const std::uint32_t header_crc = get_u32(b.data() + 44);
  if (epoch != name_epoch || epoch == 0 ||
      header_crc != crc32(b.data(), 44) ||
      payload_len != b.size() - kCkptHeaderSize ||
      payload_crc != crc32(b.data() + kCkptHeaderSize, payload_len)) {
    return false;
  }
  std::size_t pos = kCkptHeaderSize;
  std::uint64_t n = 0;
  while (pos < b.size()) {
    if (b.size() - pos < 8) return false;
    const std::uint32_t len = get_u32(b.data() + pos + 4);
    pos += 8;
    if (len > b.size() - pos) return false;
    pos += len;
    ++n;
  }
  if (n != n_records) return false;
  out.epoch = epoch;
  out.n_records = n_records;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Staging helpers (transaction side)

void Wal::stage_record(std::vector<std::uint8_t>& buf, std::uint32_t stream,
                       const void* data, std::size_t n) {
  put_u32(buf, stream);
  put_u32(buf, static_cast<std::uint32_t>(n));
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + n);
}

void Wal::stage_var_record(std::vector<std::uint8_t>& buf, std::uint64_t var_id,
                           const void* value, std::size_t n) {
  put_u32(buf, kVarStream);
  put_u32(buf, static_cast<std::uint32_t>(8 + n));
  put_u64(buf, var_id);
  const auto* p = static_cast<const std::uint8_t*>(value);
  buf.insert(buf.end(), p, p + n);
}

bool Wal::decode_var_record(const WalRecordView& r, std::uint64_t& var_id,
                            const std::uint8_t*& value,
                            std::uint32_t& size) noexcept {
  if (r.stream != kVarStream || r.size < 8) return false;
  var_id = get_u64(r.data);
  value = r.data + 8;
  size = r.size - 8;
  return true;
}

// ---------------------------------------------------------------------------
// Construction / teardown

Wal::Wal(WalOptions opts) : opts_(std::move(opts)) {
  fs_ = opts_.fs != nullptr ? opts_.fs : &common::Fs::real();
  if (opts_.dir.empty()) {
    throw std::invalid_argument("WalOptions::dir must be set");
  }
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("wal: cannot create directory " + opts_.dir);
  }
  dir_fd_.reset(
      fs_->open(opts_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0));

  // Resume after whatever valid history is on disk: the scan truncates any
  // torn tail and tells us the newest surviving epoch (checkpoint-covered or
  // in a segment); appending continues in a *fresh* segment so this instance
  // never writes into a file an earlier instance half-finished. The scanned
  // per-segment epoch ranges seed the retirement bookkeeping, and the
  // streams seen in history seed the snapshotter-coverage mask.
  const WalRecoveryInfo info = recover(opts_.dir, {});
  next_epoch_ = info.last_epoch + 1;
  stream_mask_.store(info.stream_mask, std::memory_order_relaxed);
  sealed_ = info.segment_details;

  std::uint32_t max_index = 0;
  bool any = false;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(opts_.dir, ec)) {
    std::uint32_t idx;
    if (parse_seg_name(ent.path().filename().string(), idx)) {
      if (!any || idx > max_index) max_index = idx;
      any = true;
    }
  }
  seg_index_ = any ? max_index + 1 : 0;

  open_fresh_segment();
  committer_ = std::thread([this] { committer_main(); });
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_ec_.notify_all();
  if (committer_.joinable()) committer_.join();
  if (fd_) {
    fs_->fsync(fd_.get());
    fd_.reset();
  }
  dir_fd_.reset();
}

void Wal::open_fresh_segment() {
  seg_path_ = opts_.dir + "/" + seg_name(seg_index_);
  fd_.reset(fs_->open(seg_path_.c_str(),
                      O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644));
  if (!fd_) {
    throw std::runtime_error("wal: cannot create segment " + seg_path_);
  }
  std::vector<std::uint8_t> h;
  seg_header_bytes(h, seg_index_);
  // Ctor path: EINTR/short-write absorbing loop, any other error throws
  // (the UniqueFd members unwind the descriptors — the pre-RAII code leaked
  // fd_ and dir_fd_ here because ~Wal never ran after a throwing ctor).
  const std::uint8_t* p = h.data();
  std::size_t n = h.size();
  while (n > 0) {
    const long w = fs_->write(fd_.get(), p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal: cannot initialize segment " + seg_path_);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  if (fs_->fsync(fd_.get()) != 0) {
    throw std::runtime_error("wal: cannot initialize segment " + seg_path_);
  }
  if (dir_fd_) fs_->fsync(dir_fd_.get());
  seg_bytes_ = h.size();
  seg_first_epoch_ = 0;
  seg_last_epoch_ = 0;
}

// ---------------------------------------------------------------------------
// Publish side

std::uint64_t Wal::publish(const std::uint8_t* staged, std::size_t bytes,
                           std::uint32_t records) {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t e = next_epoch_++;
  const bool was_empty = pending_.empty();
  // Pending unit: epoch + record count + sealed byte length, then the staged
  // records verbatim. Expansion to the on-disk format (and all CRC work)
  // happens on the committer thread, off the commit-fence critical path.
  put_u64(pending_, e);
  put_u32(pending_, records);
  put_u32(pending_, static_cast<std::uint32_t>(bytes));
  pending_.insert(pending_.end(), staged, staged + bytes);
  pending_records_ += records;
  pending_last_epoch_ = e;
  if (was_empty) {
    pending_first_epoch_ = e;
    first_pending_tp_ = std::chrono::steady_clock::now();
  }
  const bool kick = was_empty || pending_records_ >= opts_.fsync_every_n;
  published_epoch_.store(e, std::memory_order_release);
  lk.unlock();
  if (kick) work_ec_.notify_all();
  return e;
}

void Wal::wait_durable(std::uint64_t epoch) {
  for (;;) {
    if (durable_epoch_.load(std::memory_order_acquire) >= epoch) return;
    if (failed()) {
      throw WalUnavailable(
          "wal: log failed before the commit's batch became durable");
    }
    const std::uint32_t t = durable_ec_.prepare();
    if (durable_epoch_.load(std::memory_order_acquire) >= epoch) return;
    durable_ec_.wait_until(
        t, std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  }
}

void Wal::flush() {
  const std::uint64_t e = published_epoch_.load(std::memory_order_acquire);
  if (e == 0) return;
  work_ec_.notify_all();
  wait_durable(e);
}

WalStats Wal::stats() const noexcept {
  WalStats s;
  s.records = n_records_.load(std::memory_order_relaxed);
  s.bytes = n_bytes_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.fsyncs = n_fsyncs_.load(std::memory_order_relaxed);
  s.rotations = n_rotations_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.retries = n_retries_.load(std::memory_order_relaxed);
  s.segments_retired = n_segments_retired_.load(std::memory_order_relaxed);
  s.published_epoch = published_epoch_.load(std::memory_order_relaxed);
  s.durable_epoch = durable_epoch_.load(std::memory_order_relaxed);
  return s;
}

void Wal::register_var(std::uint64_t id, const VarBase& var) {
  var_ids_.emplace(&var, id);
}

bool Wal::var_id(const VarBase* var, std::uint64_t& id) const noexcept {
  const auto it = var_ids_.find(var);
  if (it == var_ids_.end()) return false;
  id = it->second;
  return true;
}

// ---------------------------------------------------------------------------
// Committer side

bool Wal::chaos_crash(ChaosPoint p) noexcept {
  if (opts_.chaos == nullptr) [[likely]] return false;
  const ChaosAction a = opts_.chaos->decide(p);
  if (a == ChaosAction::None) return false;
  if (a == ChaosAction::Crash) return true;
  // Abort/Timeout have no meaning on the committer thread; every counted
  // decision must have an effect, so they coerce to a delay (which widens
  // the published-but-not-durable window — the interesting one).
  opts_.chaos->inject_delay();
  return false;
}

void Wal::fail(const char* op, int err, const std::string& path) {
  n_errors_.fetch_add(1, std::memory_order_relaxed);
  const bool already = failed_.exchange(true, std::memory_order_acq_rel);
  durable_ec_.notify_all();  // strict waiters must stop waiting and throw
  if (already) return;
  const WalError e{op, err, path};
  if (opts_.on_error) {
    opts_.on_error(e);
  } else {
    std::fprintf(stderr,
                 "[wal] FAILED: %s on %s: %s — durability is now read-only\n",
                 op, path.c_str(), std::strerror(err));
  }
}

WalErrorPolicy Wal::classify(int err) const noexcept {
  if (opts_.error_policy) return opts_.error_policy(err);
  switch (err) {
    case EAGAIN:
    case ENOBUFS:
    case ENOMEM:
      return WalErrorPolicy::Retry;
    default:
      return WalErrorPolicy::Fatal;
  }
}

void Wal::retry_backoff_sleep(unsigned attempt) noexcept {
  const auto d = opts_.retry_backoff * (1u << std::min(attempt, 6u));
  if (d.count() > 0) std::this_thread::sleep_for(d);
}

bool Wal::write_all(int fd, const void* data, std::size_t n,
                    const std::string& path) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  unsigned attempts = 0;
  while (n > 0) {
    const long w = fs_->write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      if (classify(err) == WalErrorPolicy::Retry &&
          attempts < opts_.retry_limit) {
        n_retries_.fetch_add(1, std::memory_order_relaxed);
        retry_backoff_sleep(attempts++);
        continue;
      }
      fail("write", err, path);
      return false;
    }
    attempts = 0;  // progress resets the transient-retry budget
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void Wal::committer_main() {
  for (;;) {
    Batch b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Park until there is work (long deadline — publishers notify the
      // empty->nonempty transition, so an idle log costs ~no wakeups).
      while (pending_.empty() && !stop_) {
        const std::uint32_t t = work_ec_.prepare();
        lk.unlock();
        work_ec_.wait_until(t, std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(50));
        lk.lock();
      }
      if (pending_.empty()) return;  // stopped and fully drained
      // Batching window: wait for fsync_every_n records or the interval
      // measured from the oldest pending record, whichever first.
      while (!stop_ && pending_records_ < opts_.fsync_every_n) {
        const auto deadline = first_pending_tp_ + opts_.fsync_interval_us;
        if (std::chrono::steady_clock::now() >= deadline) break;
        const std::uint32_t t = work_ec_.prepare();
        lk.unlock();
        work_ec_.wait_until(t, deadline);
        lk.lock();
      }
      b.units.swap(pending_);
      b.records = pending_records_;
      b.first_epoch = pending_first_epoch_;
      b.last_epoch = pending_last_epoch_;
      pending_records_ = 0;
    }
    // A failed log drops batches on the floor: durable_epoch stops moving,
    // strict waiters throw, and publish-side commits refuse up front.
    if (!failed()) write_batch(b);
  }
}

void Wal::write_batch(Batch& b) {
  // WalSeal gate: crash after draining, before anything reaches the file —
  // the whole batch (published, possibly relaxed-acked) is lost.
  if (chaos_crash(ChaosPoint::WalSeal)) ::_exit(kWalCrashExitCode);

  // The drain is split into frames: each frame becomes one on-disk batch,
  // capped so header+payload fits a segment's data budget (a single
  // oversized transaction still gets a frame of its own). Rotation thereby
  // interleaves with a large drain instead of waiting for the next one.
  // The single fsync at the end covers every frame — rotate_segment fsyncs
  // the outgoing segment before switching, so no frame is left uncovered.
  const std::size_t seg_budget =
      opts_.segment_bytes > kSegHeaderSize + kBatchHeaderSize
          ? opts_.segment_bytes - kSegHeaderSize - kBatchHeaderSize
          : 0;

  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> header;
  std::uint64_t frame_first = 0;
  std::uint64_t frame_last = 0;
  std::uint32_t frame_records = 0;
  std::uint64_t seen_streams = 0;

  const auto emit_frame = [&]() -> bool {
    header.clear();
    put_u32(header, kBatchMagic);
    put_u32(header, frame_records);
    put_u64(header, payload.size());
    put_u64(header, frame_first);
    put_u64(header, frame_last);
    put_u32(header, crc32(payload.data(), payload.size()));
    put_u32(header, crc32(header.data(), header.size()));

    // Keep frames whole within a segment: rotate first if this one would
    // push the segment past its limit (and it holds at least one frame).
    if (seg_bytes_ > kSegHeaderSize &&
        seg_bytes_ + header.size() + payload.size() > opts_.segment_bytes) {
      if (!rotate_segment()) return false;  // failed -> fail-stop
    }

    // WalAppend gate: a crash draw *tears* the append — a prefix of the
    // frame reaches the file before the kill, which is exactly the torn
    // tail the recovery checksums must detect and truncate.
    if (chaos_crash(ChaosPoint::WalAppend)) {
      (void)full_write_raw(fd_.get(), header.data(), header.size());
      (void)full_write_raw(fd_.get(), payload.data(), payload.size() / 2);
      ::_exit(kWalCrashExitCode);
    }
    if (const int e = injected_io_error(ChaosPoint::WalAppend)) {
      fail("write", e, seg_path_);
      return false;
    }
    if (!write_all(fd_.get(), header.data(), header.size(), seg_path_) ||
        !write_all(fd_.get(), payload.data(), payload.size(), seg_path_)) {
      return false;
    }
    seg_bytes_ += header.size() + payload.size();
    if (seg_first_epoch_ == 0) seg_first_epoch_ = frame_first;
    seg_last_epoch_ = frame_last;
    n_records_.fetch_add(frame_records, std::memory_order_relaxed);
    n_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
    n_batches_.fetch_add(1, std::memory_order_relaxed);
    payload.clear();
    frame_records = 0;
    return true;
  };

  std::size_t pos = 0;
  while (pos < b.units.size()) {
    const std::uint64_t epoch = get_u64(b.units.data() + pos);
    const std::uint32_t records = get_u32(b.units.data() + pos + 8);
    const std::uint32_t nbytes = get_u32(b.units.data() + pos + 12);
    pos += 16;
    // Units (transactions) never split across frames, so the sealed
    // first/last epochs of consecutive frames stay dense.
    const std::size_t expanded = nbytes + std::size_t{records} * 12;
    if (frame_records > 0 && seg_budget > 0 &&
        payload.size() + expanded > seg_budget) {
      if (!emit_frame()) return;  // batch tail dropped on fail-stop
    }
    if (frame_records == 0) frame_first = epoch;
    frame_last = epoch;
    frame_records += records;
    const std::size_t unit_end = pos + nbytes;
    while (pos < unit_end) {
      const std::uint32_t stream = get_u32(b.units.data() + pos);
      const std::uint32_t len = get_u32(b.units.data() + pos + 4);
      pos += 8;
      if (stream != kVarStream) seen_streams |= stream_bit(stream);
      put_u64(payload, epoch);
      put_u32(payload, stream);
      put_u32(payload, len);
      put_u32(payload, crc32(b.units.data() + pos, len));
      payload.insert(payload.end(), b.units.data() + pos,
                     b.units.data() + pos + len);
      pos += len;
    }
  }
  if (seen_streams != 0) {
    stream_mask_.fetch_or(seen_streams, std::memory_order_relaxed);
  }
  if (frame_records > 0 && !emit_frame()) return;

  // WalFsync gate: crash after the write, before the fsync — the batch sits
  // in the page cache; relaxed acks may be lost, strict acks were never
  // given (durable_epoch has not covered them).
  if (chaos_crash(ChaosPoint::WalFsync)) ::_exit(kWalCrashExitCode);
  if (const int e = injected_io_error(ChaosPoint::WalFsync)) {
    fail("fsync", e, seg_path_);
    return;
  }
  // fsync never consults the error policy: after a failed fsync the kernel
  // may have discarded the dirty pages, so a retried fsync that "succeeds"
  // would certify data that never reached the platter (fsyncgate).
  if (fs_->fsync(fd_.get()) != 0) {
    fail("fsync", errno, seg_path_);
    return;
  }

  n_fsyncs_.fetch_add(1, std::memory_order_relaxed);
  durable_epoch_.store(b.last_epoch, std::memory_order_release);
  durable_ec_.notify_all();
}

bool Wal::rotate_segment() {
  const std::uint32_t next = seg_index_ + 1;
  const std::string final_path = opts_.dir + "/" + seg_name(next);
  const std::string tmp_path = final_path + ".tmp";
  common::UniqueFd nfd;
  for (unsigned attempts = 0;;) {
    nfd.reset(fs_->open(tmp_path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644));
    if (nfd) break;
    const int err = errno;
    if (err == EINTR) continue;
    if (classify(err) == WalErrorPolicy::Retry && attempts < opts_.retry_limit) {
      n_retries_.fetch_add(1, std::memory_order_relaxed);
      retry_backoff_sleep(attempts++);
      continue;
    }
    fail("open", err, tmp_path);
    return false;
  }
  std::vector<std::uint8_t> h;
  seg_header_bytes(h, next);
  if (!write_all(nfd.get(), h.data(), h.size(), tmp_path)) return false;
  if (fs_->fsync(nfd.get()) != 0) {  // always fatal — see write_batch
    fail("fsync", errno, tmp_path);
    return false;
  }
  // WalRotate gate: crash between creating the tmp segment and renaming it
  // into place — recovery must discard the orphaned .tmp and keep reading
  // the old tail segment.
  if (chaos_crash(ChaosPoint::WalRotate)) ::_exit(kWalCrashExitCode);
  if (const int e = injected_io_error(ChaosPoint::WalRotate)) {
    fail("rename", e, tmp_path);
    return false;
  }
  for (unsigned attempts = 0;;) {
    if (fs_->rename(tmp_path.c_str(), final_path.c_str()) == 0) break;
    const int err = errno;
    if (classify(err) == WalErrorPolicy::Retry && attempts < opts_.retry_limit) {
      n_retries_.fetch_add(1, std::memory_order_relaxed);
      retry_backoff_sleep(attempts++);
      continue;
    }
    fail("rename", err, tmp_path);
    return false;
  }
  if (dir_fd_) fs_->fsync(dir_fd_.get());
  // Seal the outgoing segment: make it durable (fsync — always fatal on
  // error) and record its epoch range so checkpoint retirement knows
  // exactly what the file holds.
  if (fs_->fsync(fd_.get()) != 0) {
    fail("fsync", errno, seg_path_);
    return false;
  }
  {
    std::lock_guard<std::mutex> lk(seg_mu_);
    sealed_.push_back({seg_index_, seg_first_epoch_, seg_last_epoch_});
  }
  fd_ = std::move(nfd);
  seg_index_ = next;
  seg_path_ = final_path;
  seg_bytes_ = h.size();
  seg_first_epoch_ = 0;
  seg_last_epoch_ = 0;
  n_rotations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint32_t Wal::retire_segments(std::uint64_t covered_epoch) {
  std::vector<WalSegmentDetail> gone;
  {
    std::lock_guard<std::mutex> lk(seg_mu_);
    std::vector<WalSegmentDetail> keep;
    keep.reserve(sealed_.size());
    for (const WalSegmentDetail& s : sealed_) {
      // A sealed segment is subsumed once every epoch it holds is covered;
      // empty sealed segments (an earlier run's fresh file) hold nothing
      // and go with any checkpoint.
      (s.last_epoch <= covered_epoch ? gone : keep).push_back(s);
    }
    if (gone.empty()) return 0;
    sealed_.swap(keep);
  }
  // Oldest first: a crash mid-retirement leaves a removed *prefix*, so the
  // survivors still chain densely from the checkpoint's covering epoch.
  std::uint32_t n = 0;
  for (const WalSegmentDetail& s : gone) {
    const std::string path = opts_.dir + "/" + seg_name(s.index);
    if (fs_->unlink(path.c_str()) == 0) ++n;
  }
  n_segments_retired_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

// ---------------------------------------------------------------------------
// Recovery

WalRecoveryInfo Wal::recover(
    const std::string& dir,
    const std::function<void(const WalRecordView&)>& handler) {
  WalRecoveryInfo info;
  std::error_code ec;
  std::vector<std::pair<std::uint32_t, std::string>> segs;
  std::vector<std::pair<std::uint64_t, std::string>> ckpts;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Half-finished rotation or checkpoint: the renamed form never
      // existed, nothing in it was ever relied on. Discard.
      std::error_code rm_ec;
      fs::remove(ent.path(), rm_ec);
      ++info.skipped_tmp;
      continue;
    }
    std::uint32_t idx;
    std::uint64_t cep;
    if (parse_seg_name(name, idx)) {
      segs.emplace_back(idx, ent.path().string());
    } else if (parse_ckpt_name(name, cep)) {
      ckpts.emplace_back(cep, ent.path().string());
    }
  }
  if (ec) return info;  // missing/unreadable directory == empty log
  std::sort(segs.begin(), segs.end());
  std::sort(ckpts.begin(), ckpts.end());

  // Newest CRC-valid checkpoint wins; corrupt ones (bit rot — the write
  // protocol never renames a torn file into place) fall back to the next
  // retained one. Its records are state *at* the covering epoch; the
  // segment scan below anchors on that epoch and skips what it subsumes.
  CkptLoaded ckpt;
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    if (load_checkpoint(it->second, it->first, ckpt)) break;
    ckpt = CkptLoaded{};
    ++info.corrupt_checkpoints;
  }
  const std::uint64_t cep = ckpt.epoch;
  if (cep > 0) {
    info.checkpoint_epoch = cep;
    std::size_t pos = kCkptHeaderSize;
    while (pos < ckpt.buf.size()) {
      const std::uint32_t stream = get_u32(ckpt.buf.data() + pos);
      const std::uint32_t len = get_u32(ckpt.buf.data() + pos + 4);
      pos += 8;
      if (stream != kVarStream) info.stream_mask |= stream_bit(stream);
      if (handler) {
        handler(WalRecordView{cep, stream, ckpt.buf.data() + pos, len, true});
      }
      ++info.checkpoint_records;
      pos += len;
    }
  }

  std::uint64_t expected = 0;  // 0 = not yet anchored in the segment chain
  std::vector<std::uint8_t> buf;
  std::vector<WalRecordView> views;
  for (const auto& [idx, path] : segs) {
    if (info.torn_tail) break;  // nothing after a torn point is trustworthy
    if (!read_file(path, buf)) {
      info.torn_tail = true;
      break;
    }
    const auto torn_at = [&](std::size_t off) {
      info.torn_tail = true;
      info.truncated_bytes += buf.size() - off;
      (void)::truncate(path.c_str(), static_cast<off_t>(off));
    };
    if (buf.size() < kSegHeaderSize || get_u64(buf.data()) != kSegMagic ||
        get_u32(buf.data() + 8) != kSegVersion ||
        get_u32(buf.data() + 16) != crc32(buf.data(), 16)) {
      torn_at(0);
      break;
    }
    ++info.segments;
    WalSegmentDetail det{idx, 0, 0};
    std::size_t pos = kSegHeaderSize;
    while (pos < buf.size()) {
      const std::size_t batch_start = pos;
      if (buf.size() - pos < kBatchHeaderSize) {
        torn_at(batch_start);
        break;
      }
      const std::uint32_t magic = get_u32(buf.data() + pos);
      const std::uint32_t n_records = get_u32(buf.data() + pos + 4);
      const std::uint64_t payload_len = get_u64(buf.data() + pos + 8);
      const std::uint64_t first_epoch = get_u64(buf.data() + pos + 16);
      const std::uint64_t last_epoch = get_u64(buf.data() + pos + 24);
      const std::uint32_t payload_crc = get_u32(buf.data() + pos + 32);
      const std::uint32_t header_crc = get_u32(buf.data() + pos + 36);
      if (magic != kBatchMagic || header_crc != crc32(buf.data() + pos, 36) ||
          payload_len > buf.size() - pos - kBatchHeaderSize) {
        torn_at(batch_start);
        break;
      }
      pos += kBatchHeaderSize;
      if (payload_crc != crc32(buf.data() + pos, payload_len)) {
        torn_at(batch_start);
        break;
      }
      // Validate the sealed payload record by record before delivering any
      // of it: bounds, per-record CRC, and epoch density (each record's
      // epoch is the previous unit's or exactly one past it, anchored at
      // the batch header's sealed first/last epochs). The *first* surviving
      // batch anchors the chain: with no checkpoint it must start at epoch
      // 1; with one, at most one past the covering epoch (retirement only
      // removes a prefix, so a farther start means lost history — torn).
      views.clear();
      const std::size_t payload_end = pos + payload_len;
      std::uint64_t unit_epoch = first_epoch;
      bool valid = last_epoch >= first_epoch &&
                   (expected != 0 ? first_epoch == expected
                                  : first_epoch >= 1 && first_epoch <= cep + 1);
      std::size_t rp = pos;
      while (valid && rp < payload_end) {
        if (payload_end - rp < kRecHeaderSize) {
          valid = false;
          break;
        }
        const std::uint64_t epoch = get_u64(buf.data() + rp);
        const std::uint32_t stream = get_u32(buf.data() + rp + 8);
        const std::uint32_t len = get_u32(buf.data() + rp + 12);
        const std::uint32_t rec_crc = get_u32(buf.data() + rp + 16);
        rp += kRecHeaderSize;
        if (len > payload_end - rp || rec_crc != crc32(buf.data() + rp, len) ||
            (epoch != unit_epoch && epoch != unit_epoch + 1) ||
            epoch > last_epoch) {
          valid = false;
          break;
        }
        unit_epoch = epoch;
        if (stream != kVarStream) info.stream_mask |= stream_bit(stream);
        if (epoch > cep) {
          views.push_back(WalRecordView{epoch, stream, buf.data() + rp, len});
        } else {
          // The checkpoint already carries this record's effect (state at
          // cep); delivering it after the checkpoint records would replay
          // an operation twice. Happens when a crash hit between the
          // checkpoint rename and segment retirement.
          ++info.skipped_records;
        }
        rp += len;
      }
      if (!valid || unit_epoch != last_epoch) {
        torn_at(batch_start);
        break;
      }
      if (handler) {
        for (const WalRecordView& v : views) handler(v);
      }
      info.records += views.size();
      (void)n_records;
      if (det.first_epoch == 0) det.first_epoch = first_epoch;
      det.last_epoch = last_epoch;
      expected = last_epoch + 1;
      pos = payload_end;
    }
    info.segment_details.push_back(det);
  }
  info.last_epoch = std::max(cep, expected == 0 ? 0 : expected - 1);
  return info;
}

WalRecoveryInfo Wal::replay_into(
    const std::function<void(const WalRecordView&)>& handler) {
  // Registration takes `const VarBase&` because the commit path only reads
  // the directory; warm restart is a quiescent mutation by the owner, so
  // the cast back is sound by the replay_into contract.
  std::unordered_map<std::uint64_t, VarBase*> by_id;
  by_id.reserve(var_ids_.size());
  for (const auto& [var, id] : var_ids_) {
    by_id.emplace(id, const_cast<VarBase*>(var));
  }
  return recover(opts_.dir, [&](const WalRecordView& v) {
    std::uint64_t id;
    const std::uint8_t* value;
    std::uint32_t size;
    if (decode_var_record(v, id, value, size)) {
      const auto it = by_id.find(id);
      if (it != by_id.end() && it->second->unsafe_restore(value, size)) return;
    }
    if (handler) handler(v);
  });
}

}  // namespace proust::stm
