// Checkpoint/compaction layer for the WAL axis (DESIGN.md §15): a
// background checkpointer that bounds recovery cost by *live state size*
// instead of history length.
//
// Protocol. A checkpoint is a consistent cut of the log's registered vars
// (plus any registered wrapper-stream snapshots) paired with the covering
// epoch E = the newest published epoch at the cut:
//
//   1. Observe the Wal's checkpoint fence quiescent (no logging commit is
//      between wv generation and write-back completion).
//   2. Read E = published_epoch(), then copy every registered var with an
//      orec-validated seqlock copy (a locked or version-changed var — an
//      in-flight eager writer — restarts the cut), and run the stream
//      snapshotters.
//   3. Re-check the fence word: unchanged means no commit bracket
//      overlapped the cut, so the values are exactly the state at E.
//
//   The cut is then written tmp -> write -> fsync -> rename -> dir-fsync
//   (a torn checkpoint can only exist as an un-renamed .tmp, which
//   recovery discards; a renamed file is all-or-nothing up to bit rot,
//   which its two CRCs catch, failing over to the previous retained
//   checkpoint), and finally WAL segments whose epochs E subsumes are
//   retired (oldest first) along with checkpoints beyond the retention
//   count.
//
// Epoch-subsumption rule: a sealed segment is retired iff its last epoch
// <= E; recovery then anchors the segment chain at E (first surviving
// batch must start at most at E+1) and skips tail records with epoch <= E,
// so a crash *anywhere* in the protocol — including between rename and
// retirement, when checkpoint and segments overlap — recovers to a prefix
// with nothing lost and nothing double-applied. The extended crash matrix
// (tests/wal_checkpoint_crash_test.cpp) kills a child at every one of
// these gates under injected storage errors to prove it.
//
// Checkpoint I/O failures are non-fatal to the Wal (the log keeps its
// history; recovery just replays more): each failure is reported through
// on_error, and `max_failures` consecutive ones degrade the checkpointer
// (it stops trying) without touching the log. A checkpoint is *refused*
// (never attempted) while the log carries wrapper streams no snapshotter
// covers — subsuming history we cannot re-create would lose it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "stm/wal.hpp"

namespace proust::stm {

struct CheckpointOptions {
  /// Take a checkpoint once this many records were written since the last
  /// one (0 = no record trigger).
  std::uint64_t every_records = 0;
  /// Take a checkpoint at least this often (0 = no time trigger). With
  /// both triggers 0 the thread idles; only checkpoint_now() checkpoints.
  std::chrono::milliseconds interval{0};
  /// Durable checkpoints kept on disk (newest N); older ones unlink after
  /// each success. Minimum 1; 2 keeps a fallback against bit rot.
  std::uint32_t retain_checkpoints = 2;
  /// Retire subsumed WAL segments after each durable checkpoint.
  bool retire = true;
  /// Consecutive failures before the checkpointer degrades (stops trying;
  /// the Wal itself is untouched).
  unsigned max_failures = 3;
  /// Failure sink; null = stderr. op is "checkpoint" for cut/coverage
  /// problems, else the failing syscall name.
  std::function<void(const WalError&)> on_error;
  /// Crash/delay injection at the Ckpt* gates; drawn on the checkpointer
  /// thread's own registry slot.
  ChaosPolicy* chaos = nullptr;
  /// Checkpoint-file filesystem; null = the Wal's.
  common::Fs* fs = nullptr;
};

struct CheckpointStats {
  std::uint64_t checkpoints = 0;          // durable checkpoints written
  std::uint64_t skipped = 0;              // triggers with nothing new
  std::uint64_t refused = 0;              // uncovered wrapper stream
  std::uint64_t failures = 0;             // failed attempts (I/O or cut)
  std::uint64_t records = 0;              // records across written ckpts
  std::uint64_t bytes = 0;                // file bytes across written ckpts
  std::uint64_t segments_retired = 0;     // WAL segments unlinked
  std::uint64_t checkpoints_retired = 0;  // old checkpoints unlinked
  std::uint64_t last_epoch = 0;           // covering epoch of newest ckpt
  bool degraded = false;
};

class Checkpointer {
 public:
  /// Appends one checkpoint record for the snapshotter's stream.
  using StreamEmit = std::function<void(const void* data, std::size_t n)>;
  /// Serializes one wrapper stream's live state at the cut. Runs with the
  /// commit fence quiescent, so for *lazy* wrappers (base mutated only
  /// inside commit-locked hooks, which the fence brackets) a plain read of
  /// the base is a consistent snapshot. That is the contract: register
  /// snapshotters only for streams whose structure is mutated inside the
  /// fence bracket. Recovery hands the emitted records back with
  /// from_checkpoint=true — they are absolute state, not deltas.
  using StreamSnapshotFn = std::function<void(const StreamEmit&)>;

  /// Starts the background thread. Destroy the Checkpointer BEFORE the Wal.
  Checkpointer(Wal& wal, CheckpointOptions opts);
  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;
  ~Checkpointer();

  /// Cover one wrapper stream (setup time, like Wal::register_var).
  /// Checkpoints are refused while the log carries streams not covered
  /// here — see the header comment.
  void register_stream(std::uint32_t stream, StreamSnapshotFn fn);

  /// Synchronous checkpoint attempt on the caller's thread. True on a
  /// durable checkpoint or a no-op skip (nothing new); false on refusal,
  /// failure, or a degraded checkpointer.
  bool checkpoint_now() { return do_checkpoint(); }

  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }
  CheckpointStats stats() const;

 private:
  void run();
  void maybe_checkpoint();
  bool do_checkpoint();
  bool take_cut(std::uint64_t& epoch, std::uint64_t& records,
                std::vector<std::uint8_t>& payload);
  bool step_failed(const char* op, int err, const std::string& path);
  void report(const char* op, int err, const std::string& path);
  bool chaos_crash(ChaosPoint p) noexcept;
  bool write_full(int fd, const std::uint8_t* data, std::size_t n) noexcept;

  Wal& wal_;
  CheckpointOptions opts_;
  common::Fs* fs_ = nullptr;
  common::UniqueFd dir_fd_;

  std::mutex op_mu_;  // serializes do_checkpoint + stream registration
  std::vector<std::pair<std::uint32_t, StreamSnapshotFn>> streams_;
  std::uint64_t covered_streams_ = 0;
  std::uint64_t last_epoch_ = 0;  // newest durable covering epoch
  std::vector<std::uint64_t> retained_;  // durable ckpt epochs, oldest first
  unsigned consecutive_failures_ = 0;
  bool refusal_reported_ = false;

  std::atomic<std::uint64_t> records_at_last_{0};
  std::atomic<bool> degraded_{false};

  mutable std::mutex stats_mu_;
  CheckpointStats stats_;

  std::mutex run_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point last_attempt_tp_;  // run thread only
  std::thread thread_;
};

}  // namespace proust::stm
