#include "stm/thread_registry.hpp"

#include <stdexcept>

namespace proust::stm {

std::mutex ThreadRegistry::mu_;
std::vector<bool> ThreadRegistry::in_use_(ThreadRegistry::kMaxSlots, false);
std::atomic<unsigned> ThreadRegistry::high_water_{0};

struct SlotHolder {
  unsigned slot;
  SlotHolder() : slot(ThreadRegistry::acquire_slot()) {}
  ~SlotHolder() { ThreadRegistry::release_slot(slot); }
  SlotHolder(const SlotHolder&) = delete;
  SlotHolder& operator=(const SlotHolder&) = delete;
};

unsigned ThreadRegistry::slot() {
  thread_local SlotHolder holder;
  return holder.slot;
}

unsigned ThreadRegistry::high_water() {
  return high_water_.load(std::memory_order_acquire);
}

unsigned ThreadRegistry::acquire_slot() {
  std::lock_guard<std::mutex> g(mu_);
  for (unsigned i = 0; i < kMaxSlots; ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      unsigned hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_release)) {
      }
      return i;
    }
  }
  throw std::runtime_error("ThreadRegistry: more than 256 concurrent threads");
}

void ThreadRegistry::release_slot(unsigned slot) {
  std::lock_guard<std::mutex> g(mu_);
  in_use_[slot] = false;
}

}  // namespace proust::stm
