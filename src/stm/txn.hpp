// The transaction engine. One `Txn` object lives on the stack of an
// `Stm::atomically` call and is reused across retry attempts.
//
// Three commit/abort protocols are implemented, selected by the Stm's Mode:
//
//   Lazy       — TL2: reads are validated against a snapshot version and
//                logged; writes are buffered; commit acquires write locks,
//                advances the clock, revalidates the read set, applies
//                commit-locked hooks (Proust replay logs), writes back and
//                releases.
//   EagerWrite — TinySTM write-through: writes lock the orec at encounter
//                time, save an undo value and update in place; reads use
//                timestamp extension; abort restores undo values.
//   EagerAll   — EagerWrite plus visible readers: reads publish a bit in the
//                var's reader bitmap, writers that find foreign readers abort
//                themselves. All conflicts are detected at encounter time,
//                which is the premise of Theorem 5.2.
//
// Hooks (the Proust integration points, §2 of the paper):
//   on_abort         — inverse operations; run in reverse order while the
//                      transaction's STM locks are still held.
//   on_commit_locked — replay-log application; runs after read validation,
//                      "behind the STM's native locking mechanisms". Must not
//                      throw.
//   on_commit        — post-commit notifications (after locks released).
//   on_finish        — runs on both outcomes, last; pessimistic abstract-lock
//                      release hangs off this.
#pragma once

#include <cassert>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stm/fwd.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "stm/thread_registry.hpp"
#include "stm/var.hpp"

namespace proust::stm {

namespace detail {

/// Small-buffer value storage for redo/undo copies.
class ValBuf {
 public:
  void* ensure(std::size_t n) {
    if (n <= kInline) return inline_;
    if (!heap_ || heap_size_ < n) {
      heap_ = std::make_unique<unsigned char[]>(n);
      heap_size_ = n;
    }
    return heap_.get();
  }
  void* data(std::size_t n) noexcept {
    return n <= kInline ? static_cast<void*>(inline_) : heap_.get();
  }
  const void* data(std::size_t n) const noexcept {
    return n <= kInline ? static_cast<const void*>(inline_) : heap_.get();
  }

 private:
  static constexpr std::size_t kInline = 32;
  alignas(16) unsigned char inline_[kInline];
  std::unique_ptr<unsigned char[]> heap_;
  std::size_t heap_size_ = 0;
};

struct WriteEntry {
  VarBase* var = nullptr;
  LockRecord lock;
  ValBuf redo;   // buffered new value (Lazy mode)
  ValBuf undo;   // displaced value (eager modes)
  bool locked = false;
  bool has_redo = false;
  bool wrote = false;  // eager modes: undo saved and in-place value replaced
};

struct ReadEntry {
  const VarBase* var;
  Version version;
};

}  // namespace detail

class Txn {
 public:
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  ~Txn();

  /// The currently running transaction of this thread, or nullptr.
  static Txn* current() noexcept;

  Stm& stm() noexcept { return stm_; }
  Mode mode() const noexcept { return mode_; }
  unsigned slot() const noexcept { return slot_; }
  Version read_version() const noexcept { return rv_; }
  unsigned attempt() const noexcept { return attempt_; }

  /// Typed transactional accessors (the public read/write API).
  template <class T>
  T read(const Var<T>& v) {
    T out;
    read_impl(v, &out, sizeof(T));
    return out;
  }
  template <class T>
  void write(Var<T>& v, const std::type_identity_t<T>& value) {
    write_impl(v, &value, sizeof(T));
  }

  /// A process-unique stamp; conflict abstractions write these so that every
  /// CA write is a distinct value (§3: "values written are unique, such as
  /// sequence numbers or timestamps").
  std::uint64_t fresh_stamp() noexcept;

  /// A versioned read of `var` that never consults this transaction's own
  /// write buffer: it observes (and, in validating modes, logs) the last
  /// *committed* version. This is the "read(α)" of Theorem 5.3's
  /// write-before/read-after conflict-abstraction bracket — on a lazy STM a
  /// plain read would be satisfied from the transaction's own buffered
  /// write of α and would validate nothing.
  template <class T>
  void read_validate(const Var<T>& v) {
    read_validate_impl(v);
  }

  /// Pin this transaction's snapshot: from now on the read version may not
  /// slide forward (no timestamp extension), and conflict-abstraction reads
  /// validate against it in every mode. Replay logs call this when they
  /// take a shadow copy — the Theorem 5.3 argument needs "unchanged since
  /// MY SNAPSHOT", and extension (or EagerAll's version-free reads) would
  /// otherwise accept commits that postdate the shadow.
  void freeze_snapshot() noexcept { snapshot_frozen_ = true; }
  bool snapshot_frozen() const noexcept { return snapshot_frozen_; }

  /// Set while this transaction holds the STM's exclusive fallback gate (it
  /// must not also take the shared side at commit).
  void set_gate_exempt(bool exempt) noexcept { gate_exempt_ = exempt; }

  /// Abort this attempt and retry from the top of the atomically block.
  [[noreturn]] void retry(AbortReason reason = AbortReason::Explicit) {
    throw ConflictAbort{reason};
  }

  // --- Hook registration (see file comment for semantics) -----------------
  void on_abort(std::function<void()> fn) { abort_hooks_.push_back(std::move(fn)); }
  void on_commit_locked(std::function<void()> fn) {
    commit_locked_hooks_.push_back(std::move(fn));
  }
  void on_commit(std::function<void()> fn) { commit_hooks_.push_back(std::move(fn)); }
  void on_finish(std::function<void(Outcome)> fn) {
    finish_hooks_.push_back(std::move(fn));
  }

  // --- Transaction-local storage ------------------------------------------
  /// Per-(transaction-attempt) storage, keyed by an owner address. This is
  /// the analogue of ScalaSTM's TxnLocal: replay logs and shadow copies live
  /// here and are discarded when the attempt ends (either way).
  template <class T, class Factory>
  T& local(const void* key, Factory&& make) {
    auto it = locals_.find(key);
    if (it == locals_.end()) {
      it = locals_.emplace(key, std::shared_ptr<void>(std::make_shared<T>(
                                    std::forward<Factory>(make)())))
               .first;
    }
    return *static_cast<T*>(it->second.get());
  }
  bool has_local(const void* key) const { return locals_.count(key) != 0; }

 private:
  friend class Stm;

  explicit Txn(Stm& stm);

  void begin();
  void commit();
  /// Unwind a failed or user-aborted attempt. Safe to call exactly once per
  /// begun attempt.
  void rollback(AbortReason reason) noexcept;

  void read_impl(const VarBase& var, void* dst, std::size_t size);
  void read_validate_impl(const VarBase& var);
  void write_impl(VarBase& var, const void* src, std::size_t size);

  detail::WriteEntry* find_write(const VarBase* var) noexcept;
  detail::WriteEntry& new_write(VarBase* var);
  /// Check that every read-set entry still holds the version observed at
  /// read time (or is locked by this transaction with that displaced
  /// version).
  bool validate_read_set() const noexcept;
  /// EagerWrite/Lazy timestamp extension on a too-new read.
  void extend_or_abort();
  void run_commit_locked_hooks() noexcept;
  void mark_reader(VarBase& var);
  void clear_reader_marks() noexcept;
  void release_locks(Version version) noexcept;
  void undo_writes() noexcept;
  void reset_attempt_state() noexcept;

  Stm& stm_;
  Mode mode_;
  unsigned slot_;
  Version rv_ = 0;
  unsigned attempt_ = 0;
  bool active_ = false;
  bool snapshot_frozen_ = false;
  bool gate_exempt_ = false;

  std::vector<detail::ReadEntry> reads_;
  std::deque<detail::WriteEntry> writes_;  // deque: stable LockRecord addresses
  std::unordered_map<const VarBase*, detail::WriteEntry*> write_index_;
  std::vector<VarBase*> reader_marks_;

  std::vector<std::function<void()>> abort_hooks_;
  std::vector<std::function<void()>> commit_locked_hooks_;
  std::vector<std::function<void()>> commit_hooks_;
  std::vector<std::function<void(Outcome)>> finish_hooks_;
  std::unordered_map<const void*, std::shared_ptr<void>> locals_;
};

// Var<T> accessor definitions (declared in var.hpp).
template <class T>
  requires std::is_trivially_copyable_v<T>
T Var<T>::read(Txn& tx) const {
  return tx.read(*this);
}

template <class T>
  requires std::is_trivially_copyable_v<T>
void Var<T>::write(Txn& tx, const T& v) {
  tx.write(*this, v);
}

}  // namespace proust::stm
