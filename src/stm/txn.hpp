// The transaction engine. One `Txn` object lives on the stack of an
// `Stm::atomically` call and is reused across retry attempts; its
// variable-sized state lives in a per-thread TxnArena (txn_arena.hpp) so
// that steady-state attempts allocate nothing.
//
// Three commit/abort protocols are implemented, selected by the Stm's Mode:
//
//   Lazy       — TL2: reads are validated against a snapshot version and
//                logged; writes are buffered; commit acquires write locks,
//                advances the clock, revalidates the read set, applies
//                commit-locked hooks (Proust replay logs), writes back and
//                releases.
//   EagerWrite — TinySTM write-through: writes lock the orec at encounter
//                time, save an undo value and update in place; reads use
//                timestamp extension; abort restores undo values.
//   EagerAll   — EagerWrite plus visible readers: reads publish a bit in the
//                var's reader bitmap, writers that find foreign readers abort
//                themselves. All conflicts are detected at encounter time,
//                which is the premise of Theorem 5.2.
//
// Hooks (the Proust integration points, §2 of the paper):
//   on_abort         — inverse operations; run in reverse order while the
//                      transaction's STM locks are still held.
//   on_commit_locked — replay-log application; runs after read validation,
//                      "behind the STM's native locking mechanisms". Must not
//                      throw.
//   on_commit        — post-commit notifications (after locks released).
//   on_finish        — runs on both outcomes, last; pessimistic abstract-lock
//                      release hangs off this.
//
// Write-set lookup is a two-tier index: a pointer-hash Bloom summary word
// gates a linear scan while the write set is small (≤ kSmallWriteSet
// entries), then an open-addressing flat table (reused across attempts)
// takes over. Both tiers are allocation-free in steady state.
#pragma once

#include <cassert>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

#include "stm/fwd.hpp"
#include "stm/options.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "stm/thread_registry.hpp"
#include "stm/txn_arena.hpp"
#include "stm/var.hpp"

namespace proust::stm {

class Txn {
 public:
  using Hook = SmallFunc<void()>;
  using FinishHook = SmallFunc<void(Outcome)>;

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  ~Txn();

  /// The currently running transaction of this thread, or nullptr.
  static Txn* current() noexcept;

  Stm& stm() noexcept { return stm_; }
  Mode mode() const noexcept { return mode_; }
  unsigned slot() const noexcept { return slot_; }
  Version read_version() const noexcept { return rv_; }
  unsigned attempt() const noexcept { return attempt_; }
  /// Attempts aborted for a reason the retry policy may act on. Injected
  /// chaos aborts (AbortReason::ChaosInjected) are excluded, so fault-
  /// injection runs can neither trip the irrevocable fallback nor promote a
  /// transaction to elder spuriously.
  unsigned eligible_attempts() const noexcept { return eligible_attempts_; }

  /// Typed transactional accessors (the public read/write API).
  template <class T>
  T read(const Var<T>& v) {
    T out;
    read_impl(v, &out, sizeof(T));
    return out;
  }
  template <class T>
  void write(Var<T>& v, const std::type_identity_t<T>& value) {
    write_impl(v, &value, sizeof(T));
  }

  /// A process-unique stamp; conflict abstractions write these so that every
  /// CA write is a distinct value (§3: "values written are unique, such as
  /// sequence numbers or timestamps").
  std::uint64_t fresh_stamp() noexcept;

  /// A versioned read of `var` that never consults this transaction's own
  /// write buffer: it observes (and, in validating modes, logs) the last
  /// *committed* version. This is the "read(α)" of Theorem 5.3's
  /// write-before/read-after conflict-abstraction bracket — on a lazy STM a
  /// plain read would be satisfied from the transaction's own buffered
  /// write of α and would validate nothing.
  template <class T>
  void read_validate(const Var<T>& v) {
    read_validate_impl(v);
  }

  /// Pin this transaction's snapshot: from now on the read version may not
  /// slide forward (no timestamp extension), and conflict-abstraction reads
  /// validate against it in every mode. Replay logs call this when they
  /// take a shadow copy — the Theorem 5.3 argument needs "unchanged since
  /// MY SNAPSHOT", and extension (or EagerAll's version-free reads) would
  /// otherwise accept commits that postdate the shadow.
  void freeze_snapshot() noexcept { snapshot_frozen_ = true; }
  bool snapshot_frozen() const noexcept { return snapshot_frozen_; }

  /// True while this attempt runs as an MVCC snapshot reader: reads come
  /// from the version chains at the pinned start timestamp, no read set is
  /// kept, and the attempt cannot abort on a conflict (StmOptions::mvcc).
  bool is_snapshot_reader() const noexcept { return mvcc_reader_; }

  /// Set while this transaction holds the STM's exclusive fallback gate (it
  /// must not also take the shared side at commit).
  void set_gate_exempt(bool exempt) noexcept { gate_exempt_ = exempt; }

  // --- Optimistic read fast path (DESIGN.md §12) --------------------------
  // Wrappers call these through AbstractLock::try_read_unlocked: a read-only
  // operation traverses the base structure under its own synchronization
  // (no abstract lock), then *admits* the observed result against the
  // sequence word (or commit fence) it saw stable around the traversal.
  // Admission re-anchors the transaction's serialization point: every
  // previously admitted unlocked read is revalidated, the STM read set is
  // extended if the clock moved, and the new word is re-checked — then the
  // entry is recorded so later admissions, timestamp extensions and the
  // commit itself re-check it. Any of these failing to *hold still* returns
  // false (caller takes the locked slow path); a genuine validation miss of
  // an already-admitted read aborts the attempt (the mismatch is permanent —
  // sequence words and fence words are monotone).

  /// May this attempt serve reads through the unlocked fast path at all?
  bool fast_read_eligible() const noexcept {
    return optimistic_reads_ && !mvcc_reader_ && !gate_exempt_;
  }

  /// Admit an unlocked read observed while `*word` held the stable (even)
  /// value `observed`. True = recorded; false = discard the result and take
  /// the locked slow path. May throw ConflictAbort (permanent miss).
  bool admit_unlocked_read(const std::atomic<std::uint64_t>* word,
                           std::uint64_t observed);

  /// As above for a lazy wrapper's CommitFence word observed quiescent.
  bool admit_unlocked_fence_read(const CommitFence* fence,
                                 std::uint64_t observed);

  /// Chaos gate for the fast path: true = an injected fault forces this
  /// read onto the locked slow path (never aborts — the fallback IS the
  /// failure path under test). The nullptr test inlines so the common
  /// no-injection case costs one predicted branch per read.
  bool chaos_fastpath_fallback() {
    if (chaos_ == nullptr) [[likely]] return false;
    return chaos_fastpath_fallback_slow();
  }

  /// Counted when an eligible read fell back to the locked slow path.
  void note_fastpath_fallback() noexcept { stats_.count_fastpath_fallback(); }

  /// This attempt's sequence-word pins (core/read_seq.hpp appends one per
  /// distinct stripe a mutator touches; released even by the owning table's
  /// finish hook). Mirrors lock_holds().
  std::vector<TxnArena::SeqHold>& seq_holds() noexcept {
    return arena_.seq_holds;
  }

  /// Abort this attempt and retry from the top of the atomically block.
  [[noreturn]] void retry(AbortReason reason = AbortReason::Explicit) {
    throw ConflictAbort{reason};
  }

  // --- Durability (stm/wal.hpp, DESIGN.md §14) ----------------------------
  /// Stage one logical redo record ([stream, payload]) for this attempt.
  /// Wrapper layers log one record per structure operation; the staged
  /// buffer is published to the WAL at the commit point (inside the commit
  /// fence, every write lock held) and discarded with an aborted attempt.
  /// No-op when the Stm has no `StmOptions::durability` — wrappers can log
  /// unconditionally.
  void wal_log(std::uint32_t stream, const void* data, std::size_t n) {
    if (wal_ == nullptr) [[likely]] return;
    wal_log_slow(stream, data, n);
  }
  /// True when commits of this Stm are logged (callers can skip building
  /// record payloads entirely when not).
  bool wal_enabled() const noexcept { return wal_ != nullptr; }
  /// The epoch the WAL assigned to this transaction's records at commit
  /// (0 until then, and 0 forever for non-logging transactions).
  std::uint64_t wal_epoch() const noexcept { return wal_epoch_; }

  // --- Hook registration (see file comment for semantics) -----------------
  void on_abort(Hook fn) { arena_.abort_hooks.push_back(std::move(fn)); }
  void on_commit_locked(Hook fn) {
    if (mvcc_reader_) [[unlikely]] mvcc_promote();
    arena_.commit_locked_hooks.push_back(std::move(fn));
  }
  /// As above, but additionally holds `fence` across [wv generation ..
  /// commit-locked hooks complete], so snapshot shadow copies never read a
  /// base that is missing a logically-committed, not-yet-replayed commit
  /// (see commit_fence.hpp).
  void on_commit_locked(Hook fn, CommitFence& fence) {
    if (mvcc_reader_) [[unlikely]] mvcc_promote();
    arena_.commit_locked_hooks.push_back(std::move(fn));
    arena_.commit_fences.push_back(&fence);
  }
  void on_commit(Hook fn) { arena_.commit_hooks.push_back(std::move(fn)); }
  void on_finish(FinishHook fn) {
    arena_.finish_hooks.push_back(std::move(fn));
  }

  // --- Transaction-local storage ------------------------------------------
  /// Per-(transaction-attempt) storage, keyed by an owner address. This is
  /// the analogue of ScalaSTM's TxnLocal: replay logs and shadow copies live
  /// here and are discarded when the attempt ends (either way). Objects are
  /// placed in the arena's bump allocator; their destructors run at attempt
  /// end, in reverse creation order.
  template <class T, class Factory>
  T& local(const void* key, Factory&& make) {
    for (const TxnArena::LocalSlot& s : arena_.locals) {
      if (s.key == key) return *static_cast<T*>(s.obj);
    }
    void* mem = arena_.local_slab.allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Factory>(make)());
    arena_.locals.push_back(
        TxnArena::LocalSlot{key, obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    return *obj;
  }
  bool has_local(const void* key) const {
    for (const TxnArena::LocalSlot& s : arena_.locals) {
      if (s.key == key) return true;
    }
    return false;
  }

  /// This attempt's abstract-lock hold records (pessimistic LAPs append one
  /// per distinct stripe; the vector's capacity is retained across attempts
  /// and transactions). Cleared after the finish hooks run.
  std::vector<TxnArena::LockHold>& lock_holds() noexcept {
    return arena_.lock_holds;
  }

  /// Attempt-scoped bump storage, reset (capacity retained) when the attempt
  /// ends. Replay logs carve their op entries and shadow tables from here so
  /// that the lazy update strategy allocates nothing in steady state. Note
  /// the reset ordering: locals (and thus any log object living in one) are
  /// destroyed *before* the slab is rewound, so log destructors may still
  /// touch memory they allocated here.
  BumpArena& scratch() noexcept { return arena_.local_slab; }

  // --- Chaos (fault-injection) gates --------------------------------------
  // No-ops when StmOptions::chaos is null: one predictable branch, nothing
  // else. Wrapper layers (the LAPs) call these at their own injection
  // points; the STM's internal paths are gated inside txn.cpp.

  /// Decide at `p`: an injected delay is applied internally, an injected
  /// abort throws ConflictAbort{ChaosInjected}.
  void chaos_point(ChaosPoint p) {
    if (chaos_ != nullptr) [[unlikely]] chaos_hit(p);
  }

  /// Like chaos_point, but a forced-timeout draw is returned to the caller
  /// (true), which owns the timeout-recovery path.
  bool chaos_timeout_point(ChaosPoint p) {
    if (chaos_ == nullptr) [[likely]] return false;
    return chaos_timeout_hit(p);
  }

  /// The active fault-injection policy, or nullptr.
  ChaosPolicy* chaos() const noexcept { return chaos_; }

  // --- Contention-management gates (stm/contention.hpp) -------------------
  // All no-ops (one predictable branch) unless the Stm's contention manager
  // tracks per-slot state (priority policies, or cm_progress_tracking).

  /// Honor a pending abort request from a higher-priority transaction
  /// (throws ConflictAbort{CmKilled}). Wrapper layers (the LAPs) call this
  /// at their own long-wait points; the STM's internal paths poll in
  /// txn.cpp. Never fires past the commit point or on the irrevocable
  /// fallback attempt.
  void cm_poll() {
    if (cm_cell_ != nullptr) [[unlikely]] cm_check_doom();
  }

  /// Publish how many abstract-lock stripes this attempt currently holds
  /// (watchdog stall diagnostics).
  void cm_note_stripes(std::uint32_t n) noexcept;

 private:
  friend class Stm;

  explicit Txn(Stm& stm);

  void begin();
  void commit();
  /// Unwind a failed or user-aborted attempt. Safe to call exactly once per
  /// begun attempt.
  void rollback(AbortReason reason) noexcept;

  void read_impl(const VarBase& var, void* dst, std::size_t size);
  void read_validate_impl(const VarBase& var);
  void write_impl(VarBase& var, const void* src, std::size_t size);

  void wal_log_slow(std::uint32_t stream, const void* data, std::size_t n);
  /// Refuse a logging commit up front once the WAL is failed (fail-stop
  /// read-only durability mode — throws WalUnavailable before any lock is
  /// taken).
  void wal_check_available();
  /// Serialize registered-Var writes, publish the staged buffer and record
  /// the assigned epoch. Runs at the commit point: after the commit-locked
  /// hooks, inside the fence bracket, every write lock held.
  void wal_publish();
  /// Strict-durability ack: block until this commit's epoch is fsync-
  /// covered. Runs after the locks are released (end of commit).
  void wal_wait_strict();

  detail::WriteEntry* find_write(const VarBase* var) noexcept;
  detail::WriteEntry& new_write(VarBase* var);
  /// Snapshot read (MVCC reader attempts): newest committed version <= rv_,
  /// from the var in place or its version chain. Never aborts.
  void mvcc_read(const VarBase& var, void* dst, std::size_t size);
  /// A snapshot attempt tried to write (or register a commit-locked hook /
  /// validation read). Declared-read-only calls get a logic_error; detected
  /// ones demote in place when no snapshot read happened yet, otherwise
  /// throw ConflictAbort{MvccPromote} so the retry runs as a writer.
  void mvcc_promote();
  /// Writer commit in MVCC mode: push every displaced value onto its var's
  /// chain (before in-place overwrite / lock release) and truncate against
  /// the minimum active snapshot. Requires all write locks held.
  void mvcc_publish_chains();
  /// A read met `ver > rv_`: under LazyBump the clock may still trail `ver`,
  /// so raise it first — otherwise the retried attempt would begin with the
  /// same stale `rv` and livelock on the same location.
  void note_version_ahead(Version ver) noexcept;
  /// Check that every read-set entry still holds the version observed at
  /// read time (or is locked by this transaction with that displaced
  /// version).
  bool validate_read_set() const noexcept;
  /// Every admitted unlocked read still holds its observed word. A seq word
  /// one past its observed value is excused when this attempt pinned it (a
  /// read-then-mutate of the same stripe); a fence word one own-bracket
  /// ahead is excused at commit time (`fences_entered`) when the fence is
  /// this transaction's own.
  bool unlocked_reads_valid(bool fences_entered) const noexcept;
  bool unlocked_fence_reads_valid(bool fences_entered) const noexcept;
  bool chaos_fastpath_fallback_slow();
  /// Admission helper: revalidate all admitted unlocked reads and extend the
  /// STM read set to "now" if needed. False = the cut cannot move (frozen
  /// snapshot); throws on a genuine validation miss.
  bool fast_read_cut();
  bool holds_seq_word(const std::atomic<std::uint64_t>* word) const noexcept;
  bool owns_fence(const CommitFence* fence) const noexcept;
  /// EagerWrite/Lazy timestamp extension on a too-new read.
  void extend_or_abort();
  void run_commit_locked_hooks() noexcept;
  void enter_commit_fences() noexcept;
  void exit_commit_fences() noexcept;
  /// Run post-outcome hooks (on_commit on the commit path, then on_finish),
  /// verify teardown, and reset the arena. Run-all-then-rethrow: a throwing
  /// hook never starves the hooks after it (a LAP's stripe-release hook may
  /// sit anywhere in the list); the first exception propagates afterwards
  /// when `rethrow`, and is dropped on the (noexcept) abort path.
  void finish_attempt(Outcome outcome, bool rethrow);
  /// Chaos-mode leak check: a finished attempt must hold zero orecs, zero
  /// abstract-lock stripes and zero reader marks. Violations are filed with
  /// the policy (ChaosPolicy::report_leak) so the suite can assert on them.
  void verify_teardown() noexcept;
  void chaos_hit(ChaosPoint p);
  bool chaos_timeout_hit(ChaosPoint p);
  void chaos_delay_only(ChaosPoint p) noexcept;
  /// Publish this attempt's CM state (token/birth on the first attempt,
  /// recomputed priority each attempt, elder promotion past the threshold).
  void cm_begin_attempt();
  /// Retire the call's CM cell (token cleared, elder claim dropped).
  void cm_end_call() noexcept;
  /// Throw ConflictAbort{CmKilled} if a stronger transaction doomed us.
  void cm_check_doom();
  /// Arbitrate a lost lock race on `orec` against its current owner.
  /// Returns true when the lock drained (the caller should re-attempt the
  /// operation), false when the caller must abort with its own reason; may
  /// instead throw CmKilled if we were doomed while waiting.
  bool cm_lock_conflict(const Orec& orec);
  /// Commit-entry gate: doom poll plus bounded deference to a published
  /// elder (starvation-recovery window).
  void cm_commit_entry();
  void mark_reader(VarBase& var);
  void clear_reader_marks() noexcept;
  void release_locks(Version version) noexcept;
  void undo_writes() noexcept;
  void reset_attempt_state() noexcept;

  /// One bit of a 64-bit pointer-hash summary of the write set; a clear bit
  /// proves the var was never written by this transaction.
  static std::uint64_t bloom_bit(const VarBase* var) noexcept {
    auto x = reinterpret_cast<std::uintptr_t>(var) >> 3;
    x *= 0x9E3779B97F4A7C15ULL;
    return std::uint64_t{1} << (x >> 58);
  }

  /// Write sets at most this large are probed by linear scan.
  static constexpr std::size_t kSmallWriteSet = 8;

  /// Cap on admitted unlocked reads per attempt: each admission revalidates
  /// all prior entries, so the cap bounds that work at O(cap) per read. A
  /// transaction past it simply uses the locked slow path for further reads.
  static constexpr std::size_t kMaxUnlockedReads = 64;

  Stm& stm_;
  TxnArena& arena_;
  ChaosPolicy* chaos_;  // from StmOptions; nullptr = injection disabled
  Mode mode_;
  ClockScheme scheme_;
  unsigned slot_;
  Stats::Counters stats_;  // initialized from slot_; keep declared after it
  Version rv_ = 0;
  unsigned attempt_ = 0;
  unsigned eligible_attempts_ = 0;
  // Contention-management state; cm_cell_ == nullptr gates every CM code
  // path, so non-tracking policies keep the pre-CM hot path bit-for-bit.
  ContentionManager* cm_ = nullptr;
  CmSlot* cm_cell_ = nullptr;
  std::uint64_t cm_token_ = 0;  // call-unique birth stamp; doom compares it
  std::uint64_t cm_pri_ = ~std::uint64_t{0};
  std::uint64_t karma_ = 0;  // reads+writes across this call's aborted attempts
  bool active_ = false;
  bool snapshot_frozen_ = false;
  bool gate_exempt_ = false;
  bool optimistic_reads_ = false;  // StmOptions::optimistic_reads, cached
  bool write_table_on_ = false;  // flat-table tier engaged this attempt
  std::uint64_t write_bloom_ = 0;
  // MVCC state (all dormant — mvcc_state_ == nullptr — unless the Stm was
  // built with StmOptions::mvcc; the non-MVCC hot paths then cost one
  // predictable never-taken branch).
  MvccState* mvcc_state_ = nullptr;
  bool mvcc_reader_ = false;     // this attempt runs in snapshot mode
  bool mvcc_declared_ = false;   // whole call declared read-only (atomically_ro)
  bool mvcc_try_snapshot_ = false;  // auto-detection: next attempt goes snapshot
  bool mvcc_ineligible_ = false;    // call did writer-only things; stop trying
  std::uint64_t snapshot_reads_ = 0;  // snapshot reads served this attempt
  // Durability state (dormant — wal_ == nullptr — unless the Stm was built
  // with StmOptions::durability; commits then cost one never-taken branch).
  Wal* wal_ = nullptr;
  std::uint64_t wal_epoch_ = 0;  // epoch assigned at publish (this attempt)
};

// Var<T> accessor definitions (declared in var.hpp).
template <class T>
  requires std::is_trivially_copyable_v<T>
T Var<T>::read(Txn& tx) const {
  return tx.read(*this);
}

template <class T>
  requires std::is_trivially_copyable_v<T>
void Var<T>::write(Txn& tx, const T& v) {
  tx.write(*this, v);
}

}  // namespace proust::stm
