#include "stm/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "stm/chaos.hpp"
#include "stm/var.hpp"
#include "stm/wal_format.hpp"

namespace proust::stm {

namespace {
namespace fs = std::filesystem;
using namespace walfmt;

/// Raw writes for the CkptWrite crash gate's torn tmp file (the bytes must
/// land whatever the injected-fault config says).
void torn_write_raw(int fd, const std::vector<std::uint8_t>& header,
                    const std::vector<std::uint8_t>& payload) noexcept {
  (void)!::write(fd, header.data(), header.size());
  (void)!::write(fd, payload.data(), payload.size() / 2);
}

}  // namespace

Checkpointer::Checkpointer(Wal& wal, CheckpointOptions opts)
    : wal_(wal), opts_(std::move(opts)) {
  fs_ = opts_.fs != nullptr ? opts_.fs : &wal_.fs();
  if (opts_.retain_checkpoints == 0) opts_.retain_checkpoints = 1;
  dir_fd_.reset(fs_->open(wal_.options().dir.c_str(),
                          O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0));
  // Adopt the durable checkpoints already on disk: they anchor the skip
  // test (never re-checkpoint a covered epoch) and the retention count.
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(wal_.options().dir, ec)) {
    std::uint64_t epoch;
    if (parse_ckpt_name(ent.path().filename().string(), epoch)) {
      retained_.push_back(epoch);
    }
  }
  std::sort(retained_.begin(), retained_.end());
  if (!retained_.empty()) {
    last_epoch_ = retained_.back();
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.last_epoch = last_epoch_;
  }
  thread_ = std::thread([this] { run(); });
}

Checkpointer::~Checkpointer() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Checkpointer::register_stream(std::uint32_t stream, StreamSnapshotFn fn) {
  std::lock_guard<std::mutex> lk(op_mu_);
  streams_.emplace_back(stream, std::move(fn));
  covered_streams_ |= Wal::stream_bit(stream);
}

CheckpointStats Checkpointer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void Checkpointer::run() {
  last_attempt_tp_ = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(run_mu_);
  for (;;) {
    // Poll cadence: fast enough to catch the records trigger promptly,
    // idle-cheap when no trigger is configured (the pr10 A/B attaches an
    // idle checkpointer and demands it free).
    auto wait = std::chrono::milliseconds(500);
    if (opts_.every_records > 0) wait = std::chrono::milliseconds(5);
    if (opts_.interval.count() > 0) wait = std::min(wait, opts_.interval);
    cv_.wait_for(lk, wait, [this] { return stop_; });
    if (stop_) return;
    lk.unlock();
    maybe_checkpoint();
    lk.lock();
  }
}

void Checkpointer::maybe_checkpoint() {
  bool want = false;
  if (opts_.every_records > 0 &&
      wal_.stats().records -
              records_at_last_.load(std::memory_order_relaxed) >=
          opts_.every_records) {
    want = true;
  }
  const auto now = std::chrono::steady_clock::now();
  if (!want && opts_.interval.count() > 0 &&
      now - last_attempt_tp_ >= opts_.interval) {
    want = true;
  }
  if (!want) return;
  last_attempt_tp_ = now;
  (void)do_checkpoint();
}

bool Checkpointer::chaos_crash(ChaosPoint p) noexcept {
  if (opts_.chaos == nullptr) [[likely]] return false;
  const ChaosAction a = opts_.chaos->decide(p);
  if (a == ChaosAction::None) return false;
  if (a == ChaosAction::Crash) return true;
  opts_.chaos->inject_delay();
  return false;
}

void Checkpointer::report(const char* op, int err, const std::string& path) {
  const WalError e{op, err, path};
  if (opts_.on_error) {
    opts_.on_error(e);
  } else {
    std::fprintf(stderr, "[checkpoint] failed: %s on %s: %s\n", op,
                 path.c_str(), std::strerror(err));
  }
}

bool Checkpointer::step_failed(const char* op, int err,
                               const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.failures;
  }
  if (++consecutive_failures_ >= opts_.max_failures) {
    degraded_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.degraded = true;
  }
  report(op, err, path);
  return false;
}

bool Checkpointer::write_full(int fd, const std::uint8_t* data,
                              std::size_t n) noexcept {
  while (n > 0) {
    const long w = fs_->write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool Checkpointer::take_cut(std::uint64_t& epoch, std::uint64_t& records,
                            std::vector<std::uint8_t>& payload) {
  CommitFence& fence = wal_.checkpoint_fence();
  std::vector<std::uint8_t> value;
  // Bounded spin: every restart means a logging commit (or an in-flight
  // eager writer) overlapped the cut, so retries ride on writer progress;
  // the bound only guards against a pathological commit storm — a failed
  // cut is retried at the next trigger, nothing is lost.
  for (int attempt = 0; attempt < 200000; ++attempt) {
    const std::uint64_t w0 = fence.word();
    if (!CommitFence::quiescent(w0)) {
      std::this_thread::yield();
      continue;
    }
    epoch = wal_.published_epoch();
    payload.clear();
    records = 0;
    bool ok = true;
    for (const auto& [var, id] : wal_.registered_vars()) {
      value.resize(var->unsafe_size());
      if (!var->checkpoint_copy(value.data())) {
        ok = false;  // locked or raced — restart the whole cut
        break;
      }
      Wal::stage_var_record(payload, id, value.data(), value.size());
      ++records;
    }
    if (ok) {
      for (const auto& [stream, fn] : streams_) {
        fn([&](const void* data, std::size_t n) {
          Wal::stage_record(payload, stream, data, n);
          ++records;
        });
      }
    }
    if (!ok || fence.word() != w0) continue;
    return true;
  }
  return false;
}

bool Checkpointer::do_checkpoint() {
  std::lock_guard<std::mutex> lk(op_mu_);
  if (degraded()) return false;

  // Coverage: refuse to subsume wrapper streams no snapshotter re-creates —
  // retiring their history (or skipping their tail records at recovery)
  // would silently lose operations.
  const std::uint64_t uncovered =
      wal_.observed_stream_mask() & ~covered_streams_;
  if (uncovered != 0) {
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++stats_.refused;
    }
    if (!refusal_reported_) {
      refusal_reported_ = true;
      report("checkpoint", EINVAL, wal_.options().dir +
                                       " (wrapper stream without a "
                                       "registered snapshotter)");
    }
    return false;
  }

  if (chaos_crash(ChaosPoint::CkptBegin)) ::_exit(kWalCrashExitCode);

  std::uint64_t epoch = 0;
  std::uint64_t records = 0;
  std::vector<std::uint8_t> payload;
  if (!take_cut(epoch, records, payload)) {
    return step_failed("checkpoint", EAGAIN, wal_.options().dir);
  }
  if (epoch == 0 || epoch <= last_epoch_) {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.skipped;
    return true;
  }

  std::vector<std::uint8_t> header;
  ckpt_header_bytes(header, epoch, records, payload);
  const std::string final_path =
      wal_.options().dir + "/" + ckpt_name(epoch);
  const std::string tmp_path = final_path + ".tmp";

  common::UniqueFd fd(fs_->open(
      tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644));
  if (!fd) return step_failed("open", errno, tmp_path);
  // CkptWrite gate: a crash draw tears the tmp file — a prefix lands, the
  // process dies, and recovery must discard the .tmp untouched.
  if (chaos_crash(ChaosPoint::CkptWrite)) {
    torn_write_raw(fd.get(), header, payload);
    ::_exit(kWalCrashExitCode);
  }
  if (!write_full(fd.get(), header.data(), header.size()) ||
      !write_full(fd.get(), payload.data(), payload.size())) {
    const int err = errno;
    fd.reset();
    fs_->unlink(tmp_path.c_str());
    return step_failed("write", err, tmp_path);
  }
  // CkptFsync gate: written but not durable — a crash leaves a complete-
  // looking .tmp that recovery still discards (never renamed).
  if (chaos_crash(ChaosPoint::CkptFsync)) ::_exit(kWalCrashExitCode);
  if (fs_->fsync(fd.get()) != 0) {  // fsync is fatal for this attempt
    const int err = errno;
    fd.reset();
    fs_->unlink(tmp_path.c_str());
    return step_failed("fsync", err, tmp_path);
  }
  fs_->close(fd.release());
  // CkptRename gate: durable tmp, not yet visible under its final name.
  if (chaos_crash(ChaosPoint::CkptRename)) ::_exit(kWalCrashExitCode);
  if (fs_->rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const int err = errno;
    fs_->unlink(tmp_path.c_str());
    return step_failed("rename", err, tmp_path);
  }
  if (dir_fd_) fs_->fsync(dir_fd_.get());

  consecutive_failures_ = 0;
  last_epoch_ = epoch;
  records_at_last_.store(wal_.stats().records, std::memory_order_relaxed);
  retained_.push_back(epoch);
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.checkpoints;
    stats_.records += records;
    stats_.bytes += header.size() + payload.size();
    stats_.last_epoch = epoch;
  }

  // CkptRetire gate: checkpoint durable and visible, nothing retired yet —
  // a crash here leaves checkpoint and segments overlapping, the exact
  // case recovery's epoch-skip rule exists for.
  if (chaos_crash(ChaosPoint::CkptRetire)) ::_exit(kWalCrashExitCode);
  std::uint64_t ckpts_gone = 0;
  while (retained_.size() > opts_.retain_checkpoints) {
    const std::string old =
        wal_.options().dir + "/" + ckpt_name(retained_.front());
    retained_.erase(retained_.begin());
    if (fs_->unlink(old.c_str()) == 0) ++ckpts_gone;
  }
  std::uint32_t segs_gone = 0;
  if (opts_.retire) segs_gone = wal_.retire_segments(epoch);
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    stats_.checkpoints_retired += ckpts_gone;
    stats_.segments_retired += segs_gone;
  }
  return true;
}

}  // namespace proust::stm
