// Pluggable contention management (§7): the policy layer that decides what a
// transaction does between attempts AND what it does the moment it detects a
// conflict — the coupling the paper's §7 laments is usually missing.
//
// Three cooperating pieces:
//
//   ContentionManager — the policy interface. Backoff/Yield/None are the
//     trivial inter-attempt policies (requester-aborts at conflicts, exactly
//     the pre-existing behavior); Karma weighs priority by work performed
//     (reads + writes across the call's aborted attempts); TimestampAging is
//     oldest-transaction-wins. A policy that `tracks()` publishes per-slot
//     state in the CmState priority table so opponents can consult it.
//
//   CmState — a per-Stm, per-thread-slot, cache-line-padded priority table
//     plus the "elder" word. Each active call publishes {token, priority,
//     birth, attempts, held stripes}; a conflicting transaction reads its
//     opponent's cell and the arbitration decides wait vs. abort-self vs.
//     request-abort (a `doom` flag the victim polls at its next read/write/
//     commit gate — never past its commit point). A call whose eligible
//     attempt count passes StmOptions::cm_elder_after publishes itself as
//     the elder: committers defer briefly (bounded by cm_elder_yield) and
//     lock waiters shed (sync/cm_hook.hpp), giving the starving transaction
//     a clean window — a per-transaction starvation bound with NO
//     stop-the-world gate.
//
//   AdmissionController — graceful degradation under overload: a sliding
//     window of commit/abort outcomes adapts a token count (AIMD: halve on
//     abort ratio > admission_high, +1 on ratio < admission_low); new
//     top-level transactions wait for a token, shedding effective
//     parallelism instead of livelocking.
//
// Every decision here is a pure function of published priorities — no
// randomness — so chaos runs stay deterministic (the CM consumes nothing
// from the chaos decision streams).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/backoff.hpp"
#include "stm/fwd.hpp"
#include "stm/options.hpp"
#include "stm/thread_registry.hpp"
#include "sync/cm_hook.hpp"

namespace proust::stm {

/// Weakest possible priority (idle slots park here; lower = stronger).
inline constexpr std::uint64_t kCmIdlePriority = ~std::uint64_t{0};

/// One registry slot's published contention state. Written by the slot's
/// running transaction at attempt boundaries (its own cache line — cheap),
/// read by opponents at conflicts and by the watchdog; `doom` is the one
/// field foreign transactions write.
struct alignas(kCacheLine) CmSlot {
  /// Unique id of the slot's current atomically() call; 0 = inactive.
  std::atomic<std::uint64_t> token{0};
  /// Priority key of the current attempt; lower = stronger.
  std::atomic<std::uint64_t> priority{kCmIdlePriority};
  /// Abort request: a stronger transaction stores the victim call's token
  /// here; the victim polls it (doom == my token → abort CmKilled) at its
  /// read/write/commit gates, never past its commit point.
  std::atomic<std::uint64_t> doom{0};
  /// First-attempt stamp of the current call (age; watchdog picks the
  /// oldest active transaction to boost by the smallest birth).
  std::atomic<std::uint64_t> birth{0};
  /// Diagnostics for the watchdog's stall report.
  std::atomic<std::uint32_t> attempts{0};
  std::atomic<std::uint32_t> stripes{0};  // abstract-lock stripes held
};

/// The per-Stm priority table plus the elder word.
class CmState {
 public:
  CmSlot& slot(unsigned i) noexcept { return slots_[i]; }
  const CmSlot& slot(unsigned i) const noexcept { return slots_[i]; }

  /// Slot + 1 of the published elder, 0 = none.
  unsigned elder() const noexcept {
    return elder_.load(std::memory_order_acquire);
  }

  /// Publish `s` as the elder. An incumbent keeps the word unless the
  /// challenger's published priority is strictly stronger, so at most one
  /// starving transaction at a time is granted the recovery window.
  void publish_elder(unsigned s) noexcept {
    std::uint32_t cur = elder_.load(std::memory_order_acquire);
    const std::uint64_t mine =
        slots_[s].priority.load(std::memory_order_relaxed);
    for (;;) {
      if (cur == s + 1) return;
      if (cur != 0 &&
          slots_[cur - 1].priority.load(std::memory_order_relaxed) <= mine) {
        return;  // incumbent at least as strong
      }
      if (elder_.compare_exchange_weak(cur, s + 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return;
      }
    }
  }

  /// Drop the elder claim if `s` holds it (called when the call finishes,
  /// either outcome).
  void clear_elder(unsigned s) noexcept {
    std::uint32_t expect = s + 1;
    elder_.compare_exchange_strong(expect, 0, std::memory_order_acq_rel,
                                   std::memory_order_relaxed);
  }

  /// Watchdog escalation: unconditionally crown `s`. Only the watchdog uses
  /// this (a stalled epoch means nobody is committing, so racing a normal
  /// publish is harmless — commits clear the word again).
  void force_elder(unsigned s) noexcept {
    elder_.store(s + 1, std::memory_order_release);
  }

  /// Call-unique birth stamp (monotone, nonzero): doubles as the doom token
  /// and as the age key for TimestampAging. One shared fetch_add per
  /// atomically() call, only under a tracking policy.
  std::uint64_t next_birth() noexcept {
    return births_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  std::array<CmSlot, ThreadRegistry::kMaxSlots> slots_{};
  alignas(kCacheLine) std::atomic<std::uint32_t> elder_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> births_{0};
};

/// What the arbitration tells the transaction that detected the conflict.
enum class CmDecision : std::uint8_t {
  kAbortSelf,   // yield to the opponent (classic requester-aborts)
  kWait,        // sit out a bounded wait, retry, abort self if it persists
  kAbortOther,  // doom the opponent, then wait (bounded) for it to release
};

/// The contention-manager interface. One instance per Stm, created from
/// StmOptions; also implements the sync-layer wait arbiter so the abstract
/// locks' park loops can consult the elder protocol (install explicitly —
/// the hook is process-global, like the chaos lock hook).
class ContentionManager : public sync::CmLockArbiter {
 public:
  ~ContentionManager() override;

  virtual const char* name() const noexcept = 0;

  /// Whether transactions of this policy publish CmSlot state (and poll
  /// doom flags). False keeps the pre-CM hot path untouched.
  bool tracking() const noexcept { return tracking_; }

  /// Priority key for an attempt (lower = stronger). `birth` is the call's
  /// first-attempt stamp, `karma` the work accumulated across its aborted
  /// attempts.
  virtual std::uint64_t priority(std::uint64_t birth,
                                 std::uint64_t karma) const noexcept;

  /// Arbitrate a detected conflict: self vs. the opposing lock holder's
  /// published priority.
  virtual CmDecision arbitrate(std::uint64_t self_pri,
                               std::uint64_t opp_pri) const noexcept;

  /// Inter-attempt pause after an aborted attempt.
  virtual void pause(Backoff& backoff) = 0;

  /// Install/remove this manager as the process-wide abstract-lock wait
  /// arbiter (sync/cm_hook.hpp): parked waiters shed while an elder is
  /// published so its abstract locks drain. One arbiter at a time; install
  /// before spawning workers, remove (or destroy the Stm) after joining.
  void install_lock_arbiter() noexcept {
    arbiter_installed_ = true;
    sync::set_cm_lock_arbiter(this);
  }
  void remove_lock_arbiter() noexcept {
    if (arbiter_installed_) {
      sync::set_cm_lock_arbiter(nullptr);
      arbiter_installed_ = false;
    }
  }

  sync::CmWaitVerdict on_contended_park(const void* lock, bool write,
                                        unsigned round) noexcept override;

 protected:
  ContentionManager(CmState& state, bool tracking) noexcept
      : state_(&state), tracking_(tracking) {}

  CmState* state_;
  bool tracking_;
  bool arbiter_installed_ = false;
};

/// Build the manager for `options.cm_policy` over `state`. Never null; the
/// trivial policies return a non-tracking manager unless
/// `options.cm_progress_tracking` asks for watchdog-grade diagnostics.
std::unique_ptr<ContentionManager> make_contention_manager(
    const StmOptions& options, CmState& state);

/// Adaptive admission control (see file comment). All methods are
/// thread-safe; admit()/release() bracket one top-level atomically() call.
class AdmissionController {
 public:
  void configure(const StmOptions& o) noexcept {
    enabled_ = o.admission_control;
    if (!enabled_) return;
    window_ = o.admission_window == 0 ? 1 : o.admission_window;
    high_ = o.admission_high;
    low_ = o.admission_low;
    min_tokens_ = o.admission_min_tokens == 0 ? 1 : o.admission_min_tokens;
    max_tokens_ = o.admission_max_tokens == 0 ? ThreadRegistry::kMaxSlots
                                              : o.admission_max_tokens;
    if (min_tokens_ > max_tokens_) min_tokens_ = max_tokens_;
    limit_.store(max_tokens_, std::memory_order_relaxed);
  }

  bool enabled() const noexcept { return enabled_; }
  std::uint32_t limit() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }
  std::uint32_t active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Block until a token is free. Returns the nanoseconds spent throttled
  /// (0 = admitted on the fast path). Callers hold no STM resources here —
  /// admission happens before the first attempt begins — so waiting cannot
  /// deadlock; the token floor (min_tokens >= 1) guarantees progress.
  std::uint64_t admit() noexcept;

  /// Return the token taken by admit().
  void release() noexcept {
    active_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Feed one attempt outcome into the sliding window; at each window
  /// boundary one caller recomputes the token count (AIMD).
  void note_outcome(bool committed) noexcept;

 private:
  bool enabled_ = false;
  unsigned window_ = 512;
  double high_ = 0.55;
  double low_ = 0.25;
  std::uint32_t min_tokens_ = 2;
  std::uint32_t max_tokens_ = ThreadRegistry::kMaxSlots;

  alignas(kCacheLine) std::atomic<std::uint32_t> active_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> limit_{
      ThreadRegistry::kMaxSlots};
  alignas(kCacheLine) std::atomic<std::uint64_t> window_commits_{0};
  std::atomic<std::uint64_t> window_aborts_{0};
  std::atomic<bool> adapting_{false};
};

}  // namespace proust::stm
