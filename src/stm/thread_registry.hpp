// Per-thread slot assignment. Slots index the visible-reader bitmaps
// (EagerAll mode) and the padded per-thread statistics counters. Slots are
// recycled on thread exit via a thread_local RAII holder.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace proust::stm {

class ThreadRegistry {
 public:
  /// Reader bitmaps are a single 64-bit word, so only the first 64 slots can
  /// run EagerAll transactions. Other modes work with any slot.
  static constexpr unsigned kMaxVisibleSlots = 64;
  static constexpr unsigned kMaxSlots = 256;

  /// Slot of the calling thread, assigned on first use.
  static unsigned slot();

  /// Number of slots ever assigned (for stats aggregation bounds).
  static unsigned high_water();

 private:
  friend struct SlotHolder;
  static unsigned acquire_slot();
  static void release_slot(unsigned slot);

  static std::mutex mu_;
  static std::vector<bool> in_use_;
  static std::atomic<unsigned> high_water_;
};

}  // namespace proust::stm
