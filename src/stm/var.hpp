// Transactional variables. `Var<T>` holds a trivially-copyable value guarded
// by an inline ownership record plus a visible-reader bitmap (used only in
// Mode::EagerAll). Values are read with a seqlock-style validated copy and
// written back either at commit (Mode::Lazy) or in place at encounter time
// (eager modes), always under the orec lock.
//
// The trivially-copyable restriction is deliberate: it is what makes the
// racy-read/validate protocol sound, and it mirrors how word-based STMs are
// used in practice. Proustian wrappers sidestep the restriction entirely —
// arbitrary value types live in the *base* data structure, and only conflict
// abstraction words (plain integers) go through the STM. That asymmetry is
// one of the paper's selling points.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "stm/mvcc.hpp"
#include "stm/orec.hpp"

namespace proust::stm {

/// Cache-line aligned so that adjacent vars in the striped containers (the
/// conflict-abstraction region is a dense `Var<uint64_t>` array, the
/// pure-STM map a dense `Var<Slot>` array) never share a line: one thread
/// locking/versioning its stripe must not invalidate a neighbour stripe's
/// readers. Within a var the orec word, reader bitmap and (small) inline
/// value share a single line on purpose — they are always touched together.
class alignas(kCacheLine) VarBase {
 public:
  VarBase(const VarBase&) = delete;
  VarBase& operator=(const VarBase&) = delete;

  /// Non-transactional: the last committed version of this var. Quiescent
  /// inspection only (like Var::unsafe_ref); tests use it to pin the
  /// per-orec version-monotonicity invariant.
  Version unsafe_version() const noexcept {
    return Orec::version_of(orec_.load());
  }

  /// Non-transactional: length of the retained version chain (MVCC mode
  /// only; always 0 otherwise). Quiescent inspection — the truncation tests
  /// use it to show chains shrink once readers release their snapshots.
  std::size_t unsafe_chain_length() const noexcept {
    std::size_t n = 0;
    for (const VersionNode* v = chain_.load(std::memory_order_acquire);
         v != nullptr; v = v->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  std::uint32_t unsafe_size() const noexcept { return size_; }

  /// Orec-validated racy copy for the checkpointer (stm/checkpoint.hpp):
  /// succeeds only when the var is unlocked and its version is unchanged
  /// across the copy, so the bytes are one committed value (an encounter-
  /// time eager writer holds the orec lock until commit or abort-undo, so
  /// its uncommitted bytes can never validate). `out` must hold
  /// unsafe_size() bytes. May run concurrently with transactions.
  bool checkpoint_copy(void* out) const noexcept {
    const std::uintptr_t w0 = orec_.load();  // acquire
    if (Orec::is_locked(w0)) return false;
    std::memcpy(out, data_, size_);
    // Seqlock read side: the copy's loads must complete before the
    // version re-check.
    std::atomic_thread_fence(std::memory_order_acquire);
    return orec_.load() == w0;
  }

  /// Non-transactional restore for recovery/warm restart (quiescent only —
  /// no concurrent transactions): overwrite the value bytes when `n`
  /// matches the var's size; false (and untouched) otherwise.
  bool unsafe_restore(const void* p, std::size_t n) noexcept {
    if (n != size_) return false;
    std::memcpy(data_, p, n);
    return true;
  }

 protected:
  VarBase(void* data, std::size_t size) noexcept
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}
  /// Retained versions are plain operator-new blocks owned by whichever list
  /// currently links them; a destroyed var owns its chain, and destruction
  /// implies no concurrent readers, so free it directly (pool recycling only
  /// matters on the steady-state truncation path).
  ~VarBase() {
    VersionNode* v = chain_.load(std::memory_order_relaxed);
    while (v != nullptr) {
      VersionNode* next = v->next.load(std::memory_order_relaxed);
      ::operator delete(v);
      v = next;
    }
  }

 private:
  friend class Txn;

  Orec orec_;
  /// Visible-reader bitmap, one bit per ThreadRegistry slot < 64.
  std::atomic<std::uint64_t> readers_{0};
  void* data_;
  std::uint32_t size_;
  /// Newest-first chain of displaced values (StmOptions::mvcc only;
  /// otherwise permanently null and never touched). Mutated only by the
  /// orec lock holder; traversed by snapshot readers under an EBR pin.
  std::atomic<VersionNode*> chain_{nullptr};
};

template <class T>
  requires std::is_trivially_copyable_v<T>
class Var : public VarBase {
 public:
  Var() noexcept : VarBase(&value_, sizeof(T)), value_{} {}
  explicit Var(const T& v) noexcept : VarBase(&value_, sizeof(T)), value_(v) {}

  /// Transactional read; defined in txn.hpp (needs Txn).
  T read(Txn& tx) const;
  /// Transactional write; defined in txn.hpp.
  void write(Txn& tx, const T& v);

  /// Non-transactional access for quiescent setup/inspection only (no
  /// concurrent transactions may be running).
  const T& unsafe_ref() const noexcept { return value_; }
  void unsafe_store(const T& v) noexcept { value_ = v; }

 private:
  T value_;
};

}  // namespace proust::stm
